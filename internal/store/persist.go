package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"approxcode/internal/chaos"
	"approxcode/internal/core"
	"approxcode/internal/obs"
	"approxcode/internal/place"
	"approxcode/internal/tier"
)

// Persistence is generation-numbered and atomic: every Save writes a
// complete new generation (one manifest plus one file per node, each
// in a checksummed envelope, each written to a temp file and renamed)
// and then atomically flips the CURRENT pointer to it. A crash at any
// point of a Save leaves CURRENT on the previous complete generation;
// combined with the write-ahead journal (journal.go) no acknowledged
// mutation is ever lost: Recover loads the newest complete generation
// and replays the journal suffix on top of it.
type snapshot struct {
	Params              core.Params
	NodeSize            int
	EncodeWorkers       int
	RepairWorkers       int
	ContiguousPlacement bool
	Objects             []snapObject
	FailedNodes         []int
	// Topology is the explicit failure-domain topology the store was
	// opened with, nil when the store ran on the implicit flat layout.
	// Pre-topology snapshots leave it nil too (gob skips absent
	// fields), so legacy directories load exactly as before: a flat
	// single-rack topology whose survival exposure Scrub reports but
	// nothing enforces.
	Topology *place.Topology
	// Generation is this snapshot's generation number.
	Generation uint64
	// LastSeq is the journal sequence this snapshot covers: replay
	// skips records at or below it.
	LastSeq uint64
}

type snapObject struct {
	Name     string
	Segments []Segment // metadata only
	Extents  []extentRecord
	Stripes  int
	// Sums[stripe][node] are the CRC-32C column checksums. Living in
	// the manifest — not on the nodes — they survive node corruption.
	Sums [][]uint32
	// SubSums[stripe][node][row] are the per-sub-block CRC-32C
	// checksums behind partial-column reads. Absent in pre-sub-checksum
	// snapshots (gob leaves the field nil); partial reads then fall
	// back to whole-column verification.
	SubSums [][][]uint32
	// Tier is the object's redundancy tier (a tier.Level). Pre-tier
	// snapshots leave it zero, which is Warm — exactly the layout every
	// object had before tiers existed.
	Tier int
}

// extentRecord mirrors extent with exported fields for gob.
type extentRecord struct {
	Seg, Stripe, Node, Row, Off, Length int
}

type nodeSnapshot struct {
	// Columns[object][stripe]
	Columns map[string][][]byte
}

const (
	// currentFile atomically names the live generation. Its rename is
	// the commit point of a Save.
	currentFile = "CURRENT"
	// legacyManifestFile is the pre-generation layout, still readable.
	legacyManifestFile = "store.manifest"
)

// persistMagic heads every persisted file; the version suffix guards
// against reading pre-checksum snapshots as garbage.
var persistMagic = []byte("APPRSTO2")

func manifestFileAt(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("manifest.%08d", gen))
}

func nodeFileAt(dir string, i int, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("node%03d.%08d.gob", i, gen))
}

// nodeFile is the legacy (pre-generation) node file name.
func nodeFile(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("node%03d.gob", i))
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus rename, so path is always either absent, the old
// content, or the complete new content — never a torn mix.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmpName) // best-effort temp cleanup; werr is the real failure
		return werr
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	return nil
}

// checksummedWrite writes path as magic | crc32c(payload) | len(payload)
// | payload — atomically, via temp + rename — so checksummedRead can
// reject truncated or corrupted files and a crash mid-write can never
// leave a half-written envelope under the final name.
func checksummedWrite(path string, payload []byte) error {
	var hdr [16]byte
	copy(hdr[:8], persistMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], colSum(payload))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(payload)))
	buf := make([]byte, 0, len(hdr)+len(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	return writeFileAtomic(path, buf)
}

// checksummedRead reads a file written by checksummedWrite, returning an
// error wrapping ErrCorrupted when the envelope or checksum does not
// match.
func checksummedRead(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 16 || !bytes.Equal(raw[:8], persistMagic) {
		return nil, fmt.Errorf("%w: %s: bad header", ErrCorrupted, filepath.Base(path))
	}
	want := binary.LittleEndian.Uint32(raw[8:12])
	length := binary.LittleEndian.Uint32(raw[12:16])
	payload := raw[16:]
	if uint32(len(payload)) != length {
		return nil, fmt.Errorf("%w: %s: truncated (%d of %d payload bytes)",
			ErrCorrupted, filepath.Base(path), len(payload), length)
	}
	if colSum(payload) != want {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupted, filepath.Base(path))
	}
	return payload, nil
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// scanGenerations lists the generation numbers with a manifest file in
// dir, ascending.
func scanGenerations(dir string) []uint64 {
	matches, err := filepath.Glob(filepath.Join(dir, "manifest.*"))
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, m := range matches {
		suffix := strings.TrimPrefix(filepath.Base(m), "manifest.")
		if g, err := strconv.ParseUint(suffix, 10, 64); err == nil {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// currentGeneration resolves the live generation of dir: the CURRENT
// pointer when valid, else the highest on-disk manifest (a crash can
// strand a valid CURRENT alongside newer incomplete generations, never
// the other way around — the pointer flips only after the generation
// is complete). Returns ok=false when dir uses the legacy layout or is
// empty.
func currentGeneration(dir string) (gen uint64, ok bool) {
	raw, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err == nil {
		if g, perr := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64); perr == nil {
			if _, serr := os.Stat(manifestFileAt(dir, g)); serr == nil {
				return g, true
			}
		}
	}
	// Damaged or missing pointer: fall back to the newest generation
	// whose manifest envelope verifies.
	gens := scanGenerations(dir)
	for i := len(gens) - 1; i >= 0; i-- {
		if _, rerr := checksummedRead(manifestFileAt(dir, gens[i])); rerr == nil {
			return gens[i], true
		}
	}
	return 0, false
}

// Save persists the store into dir as a fresh generation: node files
// first, then the manifest, then the atomic CURRENT flip (the commit
// point), then best-effort cleanup of superseded generations and the
// journal suffix the new snapshot covers. A crash anywhere before the
// flip leaves the previous generation live and the journal intact, so
// nothing acknowledged is lost.
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store save: %w", err)
	}
	// Quiesce mutations: the snapshot must agree exactly with LastSeq,
	// or replay after recovery would skip (or double-apply) the
	// operations racing the save.
	s.quiesce.Lock()
	defer s.quiesce.Unlock()

	gen := uint64(1)
	if g, ok := currentGeneration(dir); ok {
		gen = g + 1
	} else if _, err := os.Stat(filepath.Join(dir, legacyManifestFile)); err == nil {
		gen = 1 // upgrading a legacy dir
	}
	snap := snapshot{
		Params:              s.cfg.Code,
		NodeSize:            s.cfg.NodeSize,
		EncodeWorkers:       s.cfg.EncodeWorkers,
		RepairWorkers:       s.cfg.RepairWorkers,
		ContiguousPlacement: s.cfg.ContiguousPlacement,
		Generation:          gen,
		LastSeq:             s.lastSeq(),
	}
	if s.topoExplicit {
		snap.Topology = s.topo
	}
	for _, obj := range s.objects.snapshot() {
		obj.sumsMu.RLock()
		sums := obj.sums
		subSums := obj.subSums
		obj.sumsMu.RUnlock()
		so := snapObject{Name: obj.name, Segments: obj.segments, Stripes: obj.stripes,
			Sums: sums, SubSums: subSums, Tier: int(obj.tier.Load())}
		for _, e := range obj.extents {
			so.Extents = append(so.Extents, extentRecord{
				Seg: e.seg, Stripe: e.stripe, Node: e.node, Row: e.row, Off: e.off, Length: e.length,
			})
		}
		snap.Objects = append(snap.Objects, so)
	}
	snap.FailedNodes = s.FailedNodes()

	for i, nd := range s.nodes {
		nd.mu.RLock()
		payload, err := encodeGob(&nodeSnapshot{Columns: nd.columns})
		nd.mu.RUnlock()
		if err != nil {
			return fmt.Errorf("store save: node %d: %w", i, err)
		}
		if err := checksummedWrite(nodeFileAt(dir, i, gen), payload); err != nil {
			return fmt.Errorf("store save: node %d: %w", i, err)
		}
	}
	s.crash("save.nodes-written")
	payload, err := encodeGob(&snap)
	if err != nil {
		return fmt.Errorf("store save: manifest: %w", err)
	}
	if err := checksummedWrite(manifestFileAt(dir, gen), payload); err != nil {
		return fmt.Errorf("store save: manifest: %w", err)
	}
	s.crash("save.manifest-written")
	// The commit point: flip CURRENT to the complete new generation.
	if err := writeFileAtomic(filepath.Join(dir, currentFile), []byte(strconv.FormatUint(gen, 10)+"\n")); err != nil {
		return fmt.Errorf("store save: current: %w", err)
	}
	s.crash("save.current-flipped")
	s.cleanupGenerations(dir, gen)
	// The snapshot covers every journal record at or below LastSeq;
	// trim them (pure space optimization — replay filters by LastSeq
	// regardless, so a crash before this point changes nothing).
	if dir == s.dir {
		if s.jn != nil {
			if err := s.jn.rotate(snap.LastSeq); err != nil {
				return fmt.Errorf("store save: %w", err)
			}
		}
		s.gen = gen
	} else {
		// A full snapshot into a foreign directory supersedes whatever
		// journal lived there; leaving it would replay another store's
		// operations over this snapshot.
		if err := removeJournal(filepath.Join(dir, journalFile)); err != nil {
			return fmt.Errorf("store save: %w", err)
		}
	}
	return nil
}

// cleanupGenerations best-effort deletes superseded generation files
// and the legacy layout after gen committed.
func (s *Store) cleanupGenerations(dir string, gen uint64) {
	for _, g := range scanGenerations(dir) {
		if g >= gen {
			continue
		}
		_ = os.Remove(manifestFileAt(dir, g))
		for i := range s.nodes {
			_ = os.Remove(nodeFileAt(dir, i, g))
		}
	}
	_ = os.Remove(filepath.Join(dir, legacyManifestFile))
	for i := range s.nodes {
		_ = os.Remove(nodeFile(dir, i))
	}
}

// LoadOptions tunes Load behaviour and threads the self-healing I/O
// configuration into the restored store.
type LoadOptions struct {
	// Lenient downgrades corrupted node files to failed nodes (repair
	// rebuilds them) instead of failing the load. Manifest corruption
	// is always fatal — without it nothing can be interpreted.
	Lenient bool
	// Retry / Health / WrapIO / Obs / Crasher / CacheBytes / Tracker
	// are applied to the restored store's Config verbatim.
	Retry      RetryPolicy
	Health     HealthPolicy
	WrapIO     func(chaos.NodeIO) chaos.NodeIO
	Obs        *obs.Registry
	Crasher    *chaos.Crasher
	CacheBytes int64
	Tracker    *tier.Tracker
}

// RecoverReport describes what recovery found and did.
type RecoverReport struct {
	// Generation is the snapshot generation recovery started from.
	Generation uint64
	// ReplayedOps counts journal records applied on top of the
	// snapshot (puts, updates, node failures, repair commits).
	ReplayedOps int
	// SkippedOps counts journal records that could not be applied
	// (e.g. an object that already existed); these indicate replay of
	// an already-visible effect, not data loss.
	SkippedOps int
	// DiscardedTailBytes is the length of the torn/corrupt journal
	// tail dropped during replay — the unacknowledged suffix of a
	// crashed append.
	DiscardedTailBytes int64
	// DemotedNodes lists nodes whose snapshot files were damaged and
	// demoted to failures by a lenient load.
	DemotedNodes []int
	// RepairPending reports an interrupted repair run found in the
	// journal; StartRepair with Resume picks it up where it left off.
	RepairPending bool
	// RepairCheckpointedStripes counts stripes the interrupted repair
	// had committed; their rebuilt columns were replayed and a resumed
	// repair skips them.
	RepairCheckpointedStripes int
}

// Load restores a store saved with Save. Node files that are missing are
// treated as failed nodes (crash-equivalent); files that are present but
// truncated or corrupted fail the load with an error wrapping
// ErrCorrupted (use LoadWith's Lenient mode to demote them to failed
// nodes instead). If the directory carries a write-ahead journal, its
// valid suffix is replayed so acknowledged mutations after the last
// Save are visible.
func Load(dir string) (*Store, error) {
	return LoadWith(dir, LoadOptions{})
}

// LoadWith is Load with explicit options.
func LoadWith(dir string, opts LoadOptions) (*Store, error) {
	s, _, err := loadAndReplay(dir, opts)
	return s, err
}

// Recover is the crash-recovery entry point: it loads the newest
// complete snapshot generation, replays the journal suffix (discarding
// any torn tail), reattaches the journal for future mutations, and
// reports what it found. The recovered store continues journaling into
// dir, so the Open → mutate → crash → Recover cycle composes.
func Recover(dir string, opts LoadOptions) (*Store, *RecoverReport, error) {
	s, rep, err := loadAndReplay(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	if err := s.attachJournal(dir); err != nil {
		return nil, nil, err
	}
	return s, rep, nil
}

// OpenDurable opens (or recovers) a journaled store rooted at dir: an
// empty directory gets a fresh store with an initial snapshot
// generation and journal; a directory with prior state is recovered
// exactly as Recover does, with cfg's Retry/Health/WrapIO/Obs/Crasher
// applied. Every mutating operation on the returned store is journaled
// before it is applied, so it survives a crash at any point.
func OpenDurable(dir string, cfg Config) (*Store, *RecoverReport, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store open durable: %w", err)
	}
	_, hasGen := currentGeneration(dir)
	_, legacyErr := os.Stat(filepath.Join(dir, legacyManifestFile))
	if hasGen || legacyErr == nil {
		return Recover(dir, LoadOptions{
			Lenient:    true,
			Retry:      cfg.Retry,
			Health:     cfg.Health,
			WrapIO:     cfg.WrapIO,
			Obs:        cfg.Obs,
			Crasher:    cfg.Crasher,
			CacheBytes: cfg.CacheBytes,
			Tracker:    cfg.Tracker,
		})
	}
	s, err := Open(cfg)
	if err != nil {
		return nil, nil, err
	}
	s.dir = dir
	// Seed generation 1 so a crash before the first explicit Save
	// still leaves a recoverable directory (the journal alone cannot
	// rebuild the store: it does not carry the code parameters).
	if err := s.Save(dir); err != nil {
		return nil, nil, err
	}
	if err := s.attachJournal(dir); err != nil {
		return nil, nil, err
	}
	return s, &RecoverReport{Generation: s.gen}, nil
}

// attachJournal opens (truncating any torn tail) or creates the
// journal in dir and routes future mutations through it.
func (s *Store) attachJournal(dir string) error {
	_, validLen, _, err := readJournal(filepath.Join(dir, journalFile))
	if err != nil && !os.IsNotExist(err) {
		// A journal with a damaged header was already consumed (or
		// rejected) by loadAndReplay; recreate it fresh here.
		validLen = 0
	}
	jn, err := openJournal(filepath.Join(dir, journalFile), validLen, s.lastSeq(), s.crasher)
	if err != nil {
		return err
	}
	jn.perOp = s.cfg.NoGroupCommit
	jn.batches = s.metrics.journalBatches
	jn.records = s.metrics.journalRecords
	jn.batchBytes = s.metrics.journalBatchBytes
	s.dir = dir
	s.jn = jn
	return nil
}

// loadAndReplay loads the live snapshot generation of dir and replays
// the journal suffix over it.
func loadAndReplay(dir string, opts LoadOptions) (*Store, *RecoverReport, error) {
	rep := &RecoverReport{}
	gen, hasGen := currentGeneration(dir)
	manifestPath := filepath.Join(dir, legacyManifestFile)
	if hasGen {
		manifestPath = manifestFileAt(dir, gen)
		rep.Generation = gen
	}
	payload, err := checksummedRead(manifestPath)
	if err != nil {
		return nil, nil, fmt.Errorf("store load: manifest: %w", err)
	}
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("store load: manifest: %w: %v", ErrCorrupted, err)
	}
	s, err := Open(Config{
		Code:                snap.Params,
		NodeSize:            snap.NodeSize,
		EncodeWorkers:       snap.EncodeWorkers,
		RepairWorkers:       snap.RepairWorkers,
		ContiguousPlacement: snap.ContiguousPlacement,
		Retry:               opts.Retry,
		Health:              opts.Health,
		WrapIO:              opts.WrapIO,
		Obs:                 opts.Obs,
		Crasher:             opts.Crasher,
		CacheBytes:          opts.CacheBytes,
		Tracker:             opts.Tracker,
		Topology:            snap.Topology,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("store load: %w", err)
	}
	s.gen = snap.Generation
	s.seq = snap.LastSeq
	for _, so := range snap.Objects {
		obj := &object{name: so.Name, segments: so.Segments, stripes: so.Stripes,
			sums: so.Sums, subSums: so.SubSums}
		obj.tier.Store(int32(so.Tier))
		for _, e := range so.Extents {
			obj.extents = append(obj.extents, extent{
				seg: e.Seg, stripe: e.Stripe, node: e.Node, row: e.Row, off: e.Off, length: e.Length,
			})
		}
		s.objects.publish(so.Name, obj)
	}
	var failed []int
	failedSet := make(map[int]bool)
	for _, f := range snap.FailedNodes {
		failedSet[f] = true
	}
	nodePath := func(i int) string {
		if hasGen {
			return nodeFileAt(dir, i, gen)
		}
		return nodeFile(dir, i)
	}
	for i := range s.nodes {
		if failedSet[i] {
			failed = append(failed, i)
			continue
		}
		payload, err := checksummedRead(nodePath(i))
		if err != nil {
			if os.IsNotExist(err) {
				failed = append(failed, i)
				continue
			}
			// The file is present but damaged: strict loads refuse to
			// proceed so the caller learns the store needs repair;
			// lenient loads treat the node as crashed and rebuild it.
			if !opts.Lenient {
				return nil, nil, fmt.Errorf("store load: node %d: %w", i, err)
			}
			failed = append(failed, i)
			rep.DemotedNodes = append(rep.DemotedNodes, i)
			continue
		}
		var ns nodeSnapshot
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ns); err != nil {
			if !opts.Lenient {
				return nil, nil, fmt.Errorf("store load: node %d: %w: %v", i, ErrCorrupted, err)
			}
			failed = append(failed, i)
			rep.DemotedNodes = append(rep.DemotedNodes, i)
			continue
		}
		if ns.Columns != nil {
			s.nodes[i].columns = ns.Columns
		}
	}
	if len(failed) > 0 {
		s.applyFailNodes(failed)
	}
	if err := s.replayJournal(dir, rep, opts); err != nil {
		return nil, nil, err
	}
	return s, rep, nil
}

// replayJournal applies the journal suffix (records with seq >
// snapshot LastSeq) to the freshly loaded store.
func (s *Store) replayJournal(dir string, rep *RecoverReport, opts LoadOptions) error {
	recs, _, torn, err := readJournal(filepath.Join(dir, journalFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		// A journal whose header is damaged cannot be trusted at all.
		// Strict loads surface it; lenient loads proceed from the
		// snapshot alone (every acknowledged-but-unsnapshotted write is
		// reported discarded rather than silently dropped).
		if !opts.Lenient {
			return fmt.Errorf("store load: journal: %w", err)
		}
		if fi, serr := os.Stat(filepath.Join(dir, journalFile)); serr == nil {
			rep.DiscardedTailBytes += fi.Size()
		}
		return nil
	}
	rep.DiscardedTailBytes += torn
	s.replaying = true
	defer func() { s.replaying = false }()
	var pending *pendingRepair
	migrating := make(map[string]migrateRecord)
	for _, r := range recs {
		if r.Seq <= s.seq {
			continue // already covered by the snapshot
		}
		applied, err := s.applyRecord(r, &pending, migrating)
		if err != nil {
			return fmt.Errorf("store load: journal replay seq %d: %w", r.Seq, err)
		}
		if applied {
			rep.ReplayedOps++
		} else {
			rep.SkippedOps++
		}
		s.seq = r.Seq
	}
	// A begin with no commit means the process died mid-build: the
	// migration was never acknowledged, so delete whatever partial
	// target-tier redundancy landed and keep the old tier — the object
	// recovers to entirely the old encoding, never a mix.
	for _, mr := range migrating {
		if obj, ok := s.objects.get(mr.Name); ok {
			s.cleanupTierRedundancy(obj, tier.Level(mr.From), tier.Level(mr.To))
		}
	}
	if pending != nil {
		s.pending = pending
		rep.RepairPending = true
		for _, stripes := range pending.done {
			rep.RepairCheckpointedStripes += len(stripes)
		}
	}
	return nil
}

// applyRecord applies one journal record. It returns false (with nil
// error) for records whose effect is already visible or no longer
// applicable — replay must converge, not abort.
func (s *Store) applyRecord(r journalRecord, pending **pendingRepair, migrating map[string]migrateRecord) (bool, error) {
	switch r.Type {
	case recPut:
		var pr putRecord
		if err := r.decode(&pr); err != nil {
			return false, err
		}
		if _, exists := s.objects.get(pr.Name); exists {
			return false, nil
		}
		if err := s.applyPut(pr.Name, pr.Segments); err != nil {
			return false, err
		}
		return true, nil
	case recUpdate:
		var ur updateRecord
		if err := r.decode(&ur); err != nil {
			return false, err
		}
		// A replayed update can fail exactly where the original did
		// (e.g. against failed nodes); that reproduces the original
		// outcome, so it is a skip rather than an error.
		if err := s.applyUpdate(ur.Name, ur.ID, ur.Data); err != nil {
			return false, nil
		}
		return true, nil
	case recFailNodes:
		var fr failRecord
		if err := r.decode(&fr); err != nil {
			return false, err
		}
		s.applyFailNodes(fr.Nodes)
		return true, nil
	case recRepairStart:
		var rr repairStartRecord
		if err := r.decode(&rr); err != nil {
			return false, err
		}
		// A new start supersedes any earlier unfinished run: its
		// checkpoints no longer describe the live repair. The run's ID
		// is the start record's own sequence number.
		*pending = &pendingRepair{
			id:     r.Seq,
			failed: rr.Failed,
			done:   make(map[string]map[int]bool),
			lost:   make(map[string][]int),
		}
		return true, nil
	case recRepairStripe:
		var sr repairStripeRecord
		if err := r.decode(&sr); err != nil {
			return false, err
		}
		// The rebuilt columns are always correct to land (later journal
		// records overwrite in order); only the resume bookkeeping is
		// scoped to the live run.
		s.applyRepairStripe(sr)
		if *pending != nil && (*pending).id == sr.ID {
			(*pending).checkpoint(sr.Object, sr.Stripe, sr.Lost)
		}
		return true, nil
	case recRepairDone:
		var dr repairDoneRecord
		if err := r.decode(&dr); err != nil {
			return false, err
		}
		if *pending == nil || (*pending).id != dr.ID {
			return false, nil
		}
		for _, ni := range dr.Unfailed {
			s.unfailNode(ni)
		}
		*pending = nil
		return true, nil
	case recMigrateBegin:
		var mr migrateRecord
		if err := r.decode(&mr); err != nil {
			return false, err
		}
		// Intent only: remember it so a missing commit gets cleaned up
		// after the loop. A later begin for the same object supersedes.
		migrating[mr.Name] = mr
		return true, nil
	case recMigrateCommit:
		var mr migrateRecord
		if err := r.decode(&mr); err != nil {
			return false, err
		}
		delete(migrating, mr.Name)
		return s.applyMigrate(mr), nil
	default:
		return false, fmt.Errorf("%w: unknown journal record type %d", ErrCorrupted, r.Type)
	}
}

// applyRepairStripe writes a checkpointed repair commit's columns and
// checksums back onto the (still-failed) replacement nodes.
func (s *Store) applyRepairStripe(sr repairStripeRecord) {
	obj, ok := s.objects.get(sr.Object)
	if !ok {
		return
	}
	sums := make(map[int]uint32, len(sr.Cols))
	subSums := make(map[int][]uint32, len(sr.Cols))
	for ni, col := range sr.Cols {
		if ni < 0 || ni >= len(s.nodes) {
			continue
		}
		// memIO ignores the crash flag (repair provisions replacement
		// nodes under the failed index), so replay lands the bytes even
		// though the node stays failed until the done record.
		if err := s.writeColumn(ni, sr.Object, sr.Stripe, col); err != nil {
			continue
		}
		if sum, ok := sr.Sums[ni]; ok {
			sums[ni] = sum
			subSums[ni] = subColSums(col, s.cfg.Code.H)
		}
	}
	obj.setSums(sr.Stripe, len(s.nodes), sums)
	obj.setSubSums(sr.Stripe, len(s.nodes), subSums)
}
