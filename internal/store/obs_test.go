package store

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"approxcode/internal/chaos"
	"approxcode/internal/obs"
)

// TestMemIOReadAliasing is the regression test for the backing-slice
// leak: ReadColumn used to return the stored column itself, so any
// caller-side mutation (a chaos corrupt rule, an in-place decode)
// silently damaged the stored data.
func TestMemIOReadAliasing(t *testing.T) {
	s := openWith(t, makeSegments(t, 12, 4, 41))
	io := &memIO{s: s}
	col, err := io.ReadColumn(0, "video", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), col...)
	for i := range col {
		col[i] ^= 0xFF
	}
	again, err := io.ReadColumn(0, "video", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("mutating ReadColumn's result corrupted the stored column")
	}
}

// TestMemIOWriteAliasing is the write-side twin: WriteColumn used to
// retain the caller's buffer, aliasing the stored column to memory the
// caller may keep reusing.
func TestMemIOWriteAliasing(t *testing.T) {
	s := openWith(t, makeSegments(t, 12, 4, 42))
	io := &memIO{s: s}
	orig, err := io.ReadColumn(0, "video", 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := append([]byte(nil), orig...)
	if err := io.WriteColumn(0, "video", 0, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xCC
	}
	got, err := io.ReadColumn(0, "video", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("mutating the buffer passed to WriteColumn corrupted the stored column")
	}
}

// TestUpdateSegmentFailNodesRace drives UpdateSegment against
// concurrent FailNodes/RepairAll cycles. The fail-set lock must make
// each update atomic with respect to failures: after everything
// settles, every segment reads back as exactly one of the two payloads
// ever written — never a mix of pre- and post-update columns.
func TestUpdateSegmentFailNodesRace(t *testing.T) {
	segs := makeSegments(t, 24, 6, 43)
	s := openWith(t, segs)
	const target = 5
	old := append([]byte(nil), segs[target].Data...)
	alt := bytes.Repeat([]byte{0xB7}, len(old))
	dn := s.Code().DataNodeIndexes()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			data := alt
			if i%2 == 1 {
				data = old
			}
			// ErrUnavailable while nodes are down is expected; the
			// invariant below is about what lands, not how often.
			_ = s.UpdateSegment("video", target, data)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := s.FailNodes(dn[i%2]); err != nil {
				continue
			}
			if _, err := s.RepairAll(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if _, err := s.RepairAll(); err != nil {
		t.Fatal(err)
	}
	got, rep, err := s.Get("video")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("get: %v %+v", err, rep)
	}
	for _, g := range got {
		if g.ID != target {
			continue
		}
		if !bytes.Equal(g.Data, old) && !bytes.Equal(g.Data, alt) {
			t.Fatal("segment is a mix of pre- and post-update columns (torn update)")
		}
	}
	if scrub, err := s.Scrub(); err != nil || len(scrub.Corrupt) != 0 {
		t.Fatalf("scrub after race: %v %+v", err, scrub)
	}
}

// TestStatsConcurrentMonotonic hammers Stats while Put/Get/Scrub/
// FailNodes/RepairAll run: counters must be readable without locks and
// never move backwards.
func TestStatsConcurrentMonotonic(t *testing.T) {
	segs := makeSegments(t, 16, 4, 44)
	s := openWith(t, segs)
	dn := s.Code().DataNodeIndexes()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				_, _, _ = s.Get("video")
			case 1:
				_ = s.Put(fmt.Sprintf("extra%d", i), makeSegments(t, 4, 2, int64(i)))
			case 2:
				_, _ = s.Scrub()
			case 3:
				if err := s.FailNodes(dn[0]); err == nil {
					_, _ = s.RepairAll()
				}
			}
		}
	}()

	counters := func(st Stats) []int64 {
		return []int64{st.Retries, st.Hedges, st.HedgeWins, st.ReadErrors,
			st.ChecksumFailures, st.ShardsHealed, st.DegradedSubReads}
	}
	prev := counters(s.Stats())
	for i := 0; i < 2000; i++ {
		cur := counters(s.Stats())
		for j := range cur {
			if cur[j] < prev[j] {
				t.Fatalf("counter %d went backwards: %d -> %d", j, prev[j], cur[j])
			}
		}
		prev = cur
	}
	close(stop)
	wg.Wait()
}

// TestChaosCountersAndHistograms is the acceptance check for the
// instrumented store: under fault injection the retry counters move and
// the per-op latency histograms fill, all visible in the Prometheus
// exposition.
func TestChaosCountersAndHistograms(t *testing.T) {
	reg := obs.NewRegistry(true)
	cfg := testConfig()
	cfg.Obs = reg
	cfg.Retry = RetryPolicy{Seed: 45}
	rules, err := chaos.ParseSchedule("fault=transient,rate=0.2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.WrapIO = chaos.NewInjector(45, rules...).Wrap
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("video", makeSegments(t, 16, 4, 45)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := s.Get("video"); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Retries == 0 {
		t.Fatal("flaky I/O produced no retries")
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"store_retries_total", "store_get_seconds_count", "store_put_seconds_count",
		"store_node_read_seconds_bucket", "gf256_active_kernel",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	var getCount int64
	fmt.Sscanf(out[strings.Index(out, "store_get_seconds_count"):], "store_get_seconds_count %d", &getCount)
	if getCount < 4 {
		t.Fatalf("store_get_seconds_count = %d, want >= 4", getCount)
	}
}

// TestMetricsOverheadGate compares Get on a store with the default
// (disabled) registry against one whose metrics handles are all nil —
// the closest stand-in for the pre-instrumentation code. Gated behind
// METRICS_GATE=1 (run via `make metrics-bench`) because wall-clock
// ratios are too noisy for every CI run.
func TestMetricsOverheadGate(t *testing.T) {
	if os.Getenv("METRICS_GATE") != "1" {
		t.Skip("set METRICS_GATE=1 to run the overhead gate")
	}
	segs := makeSegments(t, 32, 4, 46)
	run := func(strip bool) float64 {
		s := openWith(t, segs)
		if strip {
			s.metrics = storeMetrics{}
		}
		best := 0.0
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					if _, _, err := s.Get("video"); err != nil {
						b.Fatal(err)
					}
				}
			})
			nsop := float64(r.T.Nanoseconds()) / float64(r.N)
			if best == 0 || nsop < best {
				best = nsop
			}
		}
		return best
	}
	baseline := run(true)
	instrumented := run(false)
	ratio := instrumented / baseline
	t.Logf("Get ns/op: stripped=%.0f instrumented(disabled)=%.0f ratio=%.4f", baseline, instrumented, ratio)
	if ratio > 1.02 {
		t.Fatalf("disabled-registry overhead %.2f%% exceeds the 2%% budget", 100*(ratio-1))
	}
}
