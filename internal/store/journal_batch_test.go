package store

import (
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"approxcode/internal/chaos"
	"approxcode/internal/obs"
)

// stallLeader marks the journal as having an active batch leader, so
// appends pile into the queue instead of committing. releaseAndDrain
// then clears the mark and commits the whole pile as one real append's
// batch — a deterministic way to exercise multi-record batches without
// depending on scheduler timing.
func stallLeader(j *journal) {
	j.mu.Lock()
	j.leader = true
	j.mu.Unlock()
}

func waitQueued(t *testing.T, j *journal, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		j.mu.Lock()
		q := len(j.queue)
		j.mu.Unlock()
		if q >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d appends queued", q, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func releaseLeader(j *journal) {
	j.mu.Lock()
	j.leader = false
	j.mu.Unlock()
}

// wireBatchCounters attaches fresh obs counters so a test can observe
// the journal's batch/record accounting.
func wireBatchCounters(j *journal) (batches, records *obs.Counter) {
	reg := obs.NewRegistry(false)
	j.batches = reg.Counter("b")
	j.records = reg.Counter("r")
	j.batchBytes = reg.Counter("bb")
	return j.batches, j.records
}

// TestJournalGroupCommitCoalesces proves the tentpole property: N
// appends queued behind a busy leader commit as ONE batch — one
// writeBatch, one fsync — and every append still gets a unique,
// contiguous, monotonically increasing sequence number matching the
// on-disk order.
func TestJournalGroupCommitCoalesces(t *testing.T) {
	path := journalPath(t)
	j, err := createJournal(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	batches, records := wireBatchCounters(j)

	const followers = 15
	stallLeader(j)
	var wg sync.WaitGroup
	seqs := make([]uint64, followers)
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seqs[i], errs[i] = j.append(recFailNodes, failRecord{Nodes: []int{i}})
		}(i)
	}
	waitQueued(t, j, followers)
	releaseLeader(j)
	// This append becomes the leader and drains the whole pile.
	lastSeq, err := j.append(recFailNodes, failRecord{Nodes: []int{followers}})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i, e := range errs {
		if e != nil {
			t.Fatalf("append %d: %v", i, e)
		}
	}
	if got := batches.Value(); got != 1 {
		t.Fatalf("committed %d batches, want 1 (coalesced)", got)
	}
	if got := records.Value(); got != followers+1 {
		t.Fatalf("batch records counter %d, want %d", got, followers+1)
	}
	seen := make(map[uint64]bool)
	for i, sq := range seqs {
		if sq == 0 || sq > followers+1 || seen[sq] {
			t.Fatalf("append %d got seq %d (dup or out of range)", i, sq)
		}
		seen[sq] = true
	}
	if seen[lastSeq] || lastSeq == 0 || lastSeq > followers+1 {
		t.Fatalf("leader seq %d collides or out of range", lastSeq)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	recs, _, torn, err := readJournal(path)
	if err != nil || torn != 0 {
		t.Fatalf("read: %v, torn %d", err, torn)
	}
	if len(recs) != followers+1 {
		t.Fatalf("%d records on disk, want %d", len(recs), followers+1)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want contiguous from 1", i, r.Seq)
		}
	}
}

// TestJournalPerOpDisablesCoalescing checks the benchmark baseline
// mode: with perOp set, the same queued pile commits one record per
// batch (one fsync each), reproducing pre-group-commit behaviour.
func TestJournalPerOpDisablesCoalescing(t *testing.T) {
	path := journalPath(t)
	j, err := createJournal(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.perOp = true
	batches, records := wireBatchCounters(j)

	const followers = 7
	stallLeader(j)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := j.append(recFailNodes, failRecord{Nodes: []int{i}}); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}(i)
	}
	waitQueued(t, j, followers)
	releaseLeader(j)
	if _, err := j.append(recFailNodes, failRecord{Nodes: []int{followers}}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if b, r := batches.Value(), records.Value(); b != followers+1 || r != followers+1 {
		t.Fatalf("perOp committed %d batches for %d records, want 1:1", b, r)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalBatchTruncationSweep is the group-commit torn-write test:
// a multi-record batch is written as one contiguous buffer, and the
// file is then truncated at EVERY byte offset, simulating a crash that
// tore the batch anywhere — mid-header, mid-payload, between records.
// At each offset replay must accept exactly the longest whole-record
// prefix: each acknowledged record is all-or-nothing, never partially
// visible.
func TestJournalBatchTruncationSweep(t *testing.T) {
	path := journalPath(t)
	j, err := createJournal(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const followers = 5
	stallLeader(j)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := j.append(recUpdate, updateRecord{Name: "obj", ID: i, Data: []byte{byte(i), 0xAB, 0xCD}}); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}(i)
	}
	waitQueued(t, j, followers)
	releaseLeader(j)
	if _, err := j.append(recUpdate, updateRecord{Name: "obj", ID: followers, Data: []byte{0xEE}}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	whole, _, _, err := readJournal(path)
	if err != nil || len(whole) != followers+1 {
		t.Fatalf("baseline: %d records, %v", len(whole), err)
	}
	// Record boundaries of the batched file, for the boundary assertion.
	boundary := map[int64]int{int64(len(journalMagic)): 0}
	off := int64(len(journalMagic))
	for i, r := range whole {
		off += journalHdrLen + int64(len(r.Payload))
		boundary[off] = i + 1
	}
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, validLen, torn, err := readJournal(path)
		if cut < len(journalMagic) {
			if err == nil {
				t.Fatalf("cut %d: headerless journal accepted", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if validLen+torn != int64(cut) {
			t.Fatalf("cut %d: validLen %d + torn %d != size", cut, validLen, torn)
		}
		// validLen must land exactly on a record boundary, and the
		// accepted records must be a byte-exact prefix of the originals.
		want, ok := boundary[validLen]
		if !ok {
			t.Fatalf("cut %d: validLen %d is not a record boundary", cut, validLen)
		}
		if len(recs) != want {
			t.Fatalf("cut %d: %d records for boundary %d", cut, len(recs), want)
		}
		for i, r := range recs {
			var got, orig updateRecord
			if err := r.decode(&got); err != nil {
				t.Fatalf("cut %d: record %d undecodable: %v", cut, i, err)
			}
			if err := whole[i].decode(&orig); err != nil {
				t.Fatal(err)
			}
			if got.ID != orig.ID || string(got.Data) != string(orig.Data) {
				t.Fatalf("cut %d: record %d mutated by truncation", cut, i)
			}
		}
	}
}

// TestJournalBatchCrashFailsWaiters arms the batch-boundary crash point
// and checks the leader's simulated death does not strand its
// followers: every queued append must return an error (their records
// were never acknowledged as durable), not hang forever.
func TestJournalBatchCrashFailsWaiters(t *testing.T) {
	path := journalPath(t)
	crasher := chaos.NewCrasher()
	j, err := createJournal(path, 0, crasher)
	if err != nil {
		t.Fatal(err)
	}
	crasher.Arm("journal.batch.before-sync", 1)

	const followers = 4
	stallLeader(j)
	var wg sync.WaitGroup
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = j.append(recFailNodes, failRecord{Nodes: []int{i}})
		}(i)
	}
	waitQueued(t, j, followers)
	releaseLeader(j)
	// The leader append dies at the crash point (panic = simulated kill).
	func() {
		defer func() {
			var ce *chaos.CrashError
			r := recover()
			if r == nil {
				t.Fatal("leader append did not crash")
			}
			if e, ok := r.(error); !ok || !errors.As(e, &ce) {
				panic(r)
			}
		}()
		_, _ = j.append(recFailNodes, failRecord{Nodes: []int{followers}})
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("followers hung after leader crash")
	}
	for i, e := range errs {
		if e == nil {
			t.Fatalf("follower %d acknowledged despite crashed batch commit", i)
		}
	}
	// The file holds fully written but unsynced records; replay may see
	// all of them or a prefix — but never a torn record.
	recs, _, _, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		var fr failRecord
		if err := r.decode(&fr); err != nil {
			t.Fatalf("record %d torn: %v", i, err)
		}
	}
	_ = j.close()
}
