package store

import "sync"

// colPool recycles the NodeSize-sized column buffers of the encode
// path. Before it, every Put allocated stripes × totalShards fresh
// columns that became garbage the moment commitPut's boundary copies
// landed on the nodes — at 1k concurrent Puts that is an allocation
// storm the GC has to chew through on the hot path. The pool caps the
// steady-state footprint at roughly (in-flight Puts × stripe size) and
// makes the encode path bounded-memory, completing the chain that
// starts with internal/parallel's pooled scratch buffers.
type colPool struct {
	size int
	pool sync.Pool
}

func newColPool(size int) *colPool {
	cp := &colPool{size: size}
	cp.pool.New = func() any {
		b := make([]byte, size)
		return &b
	}
	return cp
}

// get returns a zeroed column buffer. Zeroing is required: placement
// packs segment bytes sparsely, so untouched ranges must read as zero
// exactly as a fresh allocation would.
func (cp *colPool) get() []byte {
	bp := cp.pool.Get().(*[]byte)
	b := (*bp)[:cp.size]
	clear(b)
	return b
}

// put recycles one column buffer. Foreign or undersized buffers (e.g. a
// column sliced from a snapshot) are dropped silently.
func (cp *colPool) put(b []byte) {
	if cap(b) < cp.size {
		return
	}
	b = b[:cp.size]
	cp.pool.Put(&b)
}

// putStripes recycles every column of a prepared put's stripe set.
func (cp *colPool) putStripes(cols [][][]byte) {
	for _, stripe := range cols {
		for _, col := range stripe {
			if col != nil {
				cp.put(col)
			}
		}
	}
}
