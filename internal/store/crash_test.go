package store_test

import (
	"bytes"
	"testing"

	"approxcode/internal/chaos"
	"approxcode/internal/chaos/chaostest"
	"approxcode/internal/chaos/crashtest"
	"approxcode/internal/store"
	"approxcode/internal/tier"
)

// The store crash matrix: a fixed workload of journaled mutations
// (open, put, save, put, update, fail, repair) is killed at every
// registered crash point — journal appends, mid-write, snapshot steps,
// repair checkpoints — and recovered from the directory alone. The
// invariants, per ISSUE acceptance:
//
//   - recovery always succeeds once anything was acknowledged;
//   - every acknowledged operation's effect is present and byte-exact;
//   - an unacknowledged in-flight operation is all-or-nothing: absent,
//     or applied exactly — never torn.

func crashSegsA() []store.Segment { return chaostest.GenSegments(41, 8, 3) }
func crashSegsB() []store.Segment { return chaostest.GenSegments(42, 6, 2) }

func crashUpdateData() []byte {
	segs := crashSegsA()
	return bytes.Repeat([]byte{0xAB}, len(segs[0].Data))
}

func crashWorkload(t *testing.T, dir string, c *chaos.Crasher, log *crashtest.Log) {
	cfg := storeConfig()
	cfg.Crasher = c
	st, _, err := store.OpenDurable(dir, cfg)
	if err != nil {
		t.Fatalf("open durable: %v", err)
	}
	defer st.Close()
	log.Acked("open")
	if err := st.Put("a", crashSegsA()); err != nil {
		t.Fatalf("put a: %v", err)
	}
	log.Acked("put:a")
	if err := st.Save(dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	log.Acked("save")
	if err := st.Put("b", crashSegsB()); err != nil {
		t.Fatalf("put b: %v", err)
	}
	log.Acked("put:b")
	if err := st.MigrateObject("b", tier.Cold); err != nil {
		t.Fatalf("migrate b: %v", err)
	}
	log.Acked("migrate:b-cold")
	segsA := crashSegsA()
	if err := st.UpdateSegment("a", segsA[0].ID, crashUpdateData()); err != nil {
		t.Fatalf("update: %v", err)
	}
	log.Acked("update:a")
	if err := st.MigrateObject("a", tier.Hot); err != nil {
		t.Fatalf("migrate a: %v", err)
	}
	log.Acked("migrate:a-hot")
	victim := st.Code().DataNodeIndexes()[1]
	if err := st.FailNodes(victim); err != nil {
		t.Fatalf("fail: %v", err)
	}
	log.Acked("fail")
	if _, err := st.RepairAll(); err != nil {
		t.Fatalf("repair: %v", err)
	}
	log.Acked("repair")
}

// checkObject asserts the object's segments read back byte-exact.
// wantUpdate selects whether segment 0 must carry the updated bytes
// (true), the original (false), or may carry either (nil).
func checkObject(t *testing.T, st *store.Store, name string, want []store.Segment, wantUpdate *bool) {
	t.Helper()
	got, rep, err := st.Get(name)
	if err != nil {
		t.Fatalf("get %q: %v", name, err)
	}
	if len(rep.LostSegments) != 0 {
		t.Fatalf("get %q lost segments %v", name, rep.LostSegments)
	}
	if len(got) != len(want) {
		t.Fatalf("get %q: %d segments, want %d", name, len(got), len(want))
	}
	upd := crashUpdateData()
	for i, seg := range got {
		expect := want[i].Data
		if i == 0 && wantUpdate != nil {
			if *wantUpdate {
				expect = upd
			}
			if !bytes.Equal(seg.Data, expect) && (*wantUpdate || !bytes.Equal(seg.Data, upd)) {
				t.Fatalf("%q segment %d: neither pre- nor post-update bytes survive", name, seg.ID)
			}
			if *wantUpdate && !bytes.Equal(seg.Data, upd) {
				t.Fatalf("%q segment %d lost the acknowledged update", name, seg.ID)
			}
			continue
		}
		if !bytes.Equal(seg.Data, expect) {
			t.Fatalf("%q segment %d bytes differ after recovery", name, seg.ID)
		}
	}
}

// checkTier asserts an object's recovered tier is exactly the target
// when the migration was acknowledged, and one of {from, to} — never
// anything else — while it was in flight.
func checkTier(t *testing.T, st *store.Store, name string, acked bool, from, to tier.Level, point string, hit int) {
	t.Helper()
	lvl, ok := st.ObjectTier(name)
	if !ok {
		return // object itself still unverified/absent: covered elsewhere
	}
	if acked && lvl != to {
		t.Fatalf("%q tier = %v after acknowledged migration to %v (%s#%d)", name, lvl, to, point, hit)
	}
	if !acked && lvl != from && lvl != to {
		t.Fatalf("%q tier = %v, want %v or %v (%s#%d)", name, lvl, from, to, point, hit)
	}
}

func crashVerify(t *testing.T, dir string, log *crashtest.Log, point string, hit int) {
	st, _, err := store.Recover(dir, store.LoadOptions{Lenient: true})
	if err != nil {
		// Only tolerable before the very first acknowledgement: the
		// kill may predate the initial snapshot generation.
		if len(log.List()) == 0 {
			return
		}
		t.Fatalf("recover after %s#%d with acked ops %v: %v", point, hit, log.List(), err)
	}
	defer st.Close()
	names := st.Objects()
	has := func(n string) bool {
		for _, v := range names {
			if v == n {
				return true
			}
		}
		return false
	}
	updAcked := log.Has("update:a")
	wantUpdate := &updAcked
	if log.Has("put:a") {
		if !has("a") {
			t.Fatalf("acknowledged object a missing after %s#%d", point, hit)
		}
	}
	if has("a") {
		// Present (acked or replayed in-flight): bytes must be exact,
		// with the update visible iff acknowledged (either version is
		// legal while the update was in flight).
		checkObject(t, st, "a", crashSegsA(), wantUpdate)
	} else if updAcked {
		t.Fatalf("update acknowledged but object a missing after %s#%d", point, hit)
	}
	if log.Has("put:b") && !has("b") {
		t.Fatalf("acknowledged object b missing after %s#%d", point, hit)
	}
	if has("b") {
		checkObject(t, st, "b", crashSegsB(), nil)
	}
	// Tier invariant: an object recovers to entirely the old or entirely
	// the new encoding. An acknowledged migration must be visible; an
	// in-flight one may land either way (checkObject above already
	// proved the bytes are exact under whichever tier survived).
	checkTier(t, st, "a", log.Has("migrate:a-hot"), tier.Warm, tier.Hot, point, hit)
	checkTier(t, st, "b", log.Has("migrate:b-cold"), tier.Warm, tier.Cold, point, hit)
	if log.Has("repair") && len(st.FailedNodes()) != 0 {
		t.Fatalf("acknowledged repair left failed nodes %v after %s#%d", st.FailedNodes(), point, hit)
	}
}

// TestCrashMatrix is the full kill-and-recover sweep.
func TestCrashMatrix(t *testing.T) {
	crashtest.Matrix(t, crashtest.Scenario{
		Workload: crashWorkload,
		Verify:   crashVerify,
	})
}

// TestCrashRecoverIsRepeatable: recovering twice (a crash during the
// first recovery's journal replay leaves the directory untouched) gives
// the same state — replay is idempotent and read-only until the journal
// reattaches.
func TestCrashRecoverIsRepeatable(t *testing.T) {
	dir := t.TempDir()
	c := chaos.NewCrasher()
	log := &crashtest.Log{}
	c.Arm("put.mid-write", 1)
	if ce := c.Run(func() { crashWorkload(t, dir, c, log) }); ce == nil {
		t.Fatal("expected a crash at put.mid-write")
	}
	c.Disarm()
	for i := 0; i < 2; i++ {
		st, rep, err := store.Recover(dir, store.LoadOptions{Lenient: true})
		if err != nil {
			t.Fatalf("recover #%d: %v", i+1, err)
		}
		if rep.ReplayedOps == 0 {
			t.Fatalf("recover #%d replayed nothing; report %+v", i+1, rep)
		}
		checkObject(t, st, "a", crashSegsA(), nil)
		if err := st.Close(); err != nil {
			t.Fatalf("close #%d: %v", i+1, err)
		}
	}
}
