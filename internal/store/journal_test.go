package store

import (
	"os"
	"path/filepath"
	"testing"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), journalFile)
}

func appendRecords(t *testing.T, j *journal, n int) []uint64 {
	t.Helper()
	var seqs []uint64
	for i := 0; i < n; i++ {
		seq, err := j.append(recFailNodes, failRecord{Nodes: []int{i}})
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

func TestJournalAppendReadRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := createJournal(path, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	seqs := appendRecords(t, j, 3)
	if seqs[0] != 8 || seqs[2] != 10 {
		t.Fatalf("sequences %v, want continuation from 7", seqs)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	recs, _, torn, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("clean journal reports %d torn bytes", torn)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Seq != seqs[i] || r.Type != recFailNodes {
			t.Fatalf("record %d: seq %d type %d", i, r.Seq, r.Type)
		}
		var fr failRecord
		if err := r.decode(&fr); err != nil {
			t.Fatal(err)
		}
		if len(fr.Nodes) != 1 || fr.Nodes[0] != i {
			t.Fatalf("record %d payload %v", i, fr.Nodes)
		}
	}
}

// TestJournalTruncationSweep truncates the journal at every byte offset:
// below the magic header the file is rejected as corrupt; at or past it,
// readJournal returns the longest valid record prefix and counts the
// rest as torn — never an error, never a panic, never a partial record.
func TestJournalTruncationSweep(t *testing.T) {
	path := journalPath(t)
	j, err := createJournal(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, j, 4)
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	whole, _, _, err := readJournal(path)
	if err != nil || len(whole) != 4 {
		t.Fatalf("baseline read: %d records, %v", len(whole), err)
	}
	for off := 0; off < len(full); off++ {
		if err := os.WriteFile(path, full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, validLen, torn, err := readJournal(path)
		if off < len(journalMagic) {
			if err == nil {
				t.Fatalf("offset %d: headerless journal accepted", off)
			}
			continue
		}
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if validLen+torn != int64(off) {
			t.Fatalf("offset %d: validLen %d + torn %d != size", off, validLen, torn)
		}
		for i, r := range recs {
			if r.Seq != whole[i].Seq || r.Type != whole[i].Type {
				t.Fatalf("offset %d: record %d is not a prefix of the original", off, i)
			}
		}
		// Records past validLen must have been dropped whole: the prefix
		// ends exactly on a record boundary of the original file.
		if recs != nil && validLen > int64(off) {
			t.Fatalf("offset %d: validLen %d beyond file size", off, validLen)
		}
	}
}

func TestJournalRotateKeepsSuffix(t *testing.T) {
	path := journalPath(t)
	j, err := createJournal(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	seqs := appendRecords(t, j, 5)
	if err := j.rotate(seqs[2]); err != nil {
		t.Fatal(err)
	}
	recs, _, _, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != seqs[3] || recs[1].Seq != seqs[4] {
		t.Fatalf("rotate kept %d records (first seq %v), want the 2 past %d", len(recs), recs, seqs[2])
	}
	// Appends continue with monotonic sequences after rotation.
	more := appendRecords(t, j, 1)
	if more[0] != seqs[4]+1 {
		t.Fatalf("post-rotate seq %d, want %d", more[0], seqs[4]+1)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	recs, _, _, err = readJournal(path)
	if err != nil || len(recs) != 3 {
		t.Fatalf("after post-rotate append: %d records, %v", len(recs), err)
	}
}
