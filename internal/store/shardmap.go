package store

import (
	"sort"
	"sync"
)

// objectShardCount is the number of lock stripes in the object map. 64
// stripes keep the probability of two concurrent requests for different
// objects colliding on one mutex below 2% at 1k in-flight ops, while
// the fixed array stays small enough to embed in the Store.
const objectShardCount = 64

// objectShard is one lock stripe of the object map.
type objectShard struct {
	mu sync.RWMutex
	m  map[string]*object
}

// objectMap is the store's sharded object directory. The former single
// Store.mu RWMutex serialized every name lookup behind one cache line;
// sharding by name hash means Put/Get on different objects contend only
// when their names land on the same stripe. A nil *object value is a
// reservation: the name is claimed while its Put encodes outside any
// lock (readers treat it as not-found).
//
// Lock order: quiesce → failMu → objectShard.mu → object.sumsMu →
// node.mu. No path holds two shard mutexes at once.
type objectMap struct {
	shards [objectShardCount]objectShard
}

func newObjectMap() *objectMap {
	om := &objectMap{}
	for i := range om.shards {
		om.shards[i].m = make(map[string]*object)
	}
	return om
}

// shardOf picks the lock stripe for a name (FNV-1a, inlined to keep the
// hot lookup path allocation-free).
func (om *objectMap) shardOf(name string) *objectShard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &om.shards[h%objectShardCount]
}

// get returns the published object, or ok=false for unknown or
// reserved-but-unpublished names.
func (om *objectMap) get(name string) (*object, bool) {
	sh := om.shardOf(name)
	sh.mu.RLock()
	obj, ok := sh.m[name]
	sh.mu.RUnlock()
	if !ok || obj == nil {
		return nil, false
	}
	return obj, true
}

// reserve claims name with a nil placeholder so the Put can encode
// outside the lock. It reports false when the name is already present
// (published or reserved).
func (om *objectMap) reserve(name string) bool {
	sh := om.shardOf(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[name]; ok {
		return false
	}
	sh.m[name] = nil
	return true
}

// publish swaps the reservation (or absence) for the finished object.
func (om *objectMap) publish(name string, obj *object) {
	sh := om.shardOf(name)
	sh.mu.Lock()
	sh.m[name] = obj
	sh.mu.Unlock()
}

// drop removes a name (used to release a reservation whose Put failed).
func (om *objectMap) drop(name string) {
	sh := om.shardOf(name)
	sh.mu.Lock()
	delete(sh.m, name)
	sh.mu.Unlock()
}

// count returns the number of published objects.
func (om *objectMap) count() int {
	n := 0
	for i := range om.shards {
		sh := &om.shards[i]
		sh.mu.RLock()
		for _, obj := range sh.m {
			if obj != nil {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// names returns the published object names, sorted.
func (om *objectMap) names() []string {
	var out []string
	for i := range om.shards {
		sh := &om.shards[i]
		sh.mu.RLock()
		for name, obj := range sh.m {
			if obj != nil {
				out = append(out, name)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// snapshot returns the published objects sorted by name, for iteration
// without holding any shard lock (objects are immutable after publish
// except their checksum rows, which carry their own lock).
func (om *objectMap) snapshot() []*object {
	var out []*object
	for i := range om.shards {
		sh := &om.shards[i]
		sh.mu.RLock()
		for _, obj := range sh.m {
			if obj != nil {
				out = append(out, obj)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
