package store_test

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"approxcode/internal/chaos"
	"approxcode/internal/chaos/chaostest"
	"approxcode/internal/core"
	"approxcode/internal/store"
)

// TestChaosCorruptionWithinTolerance: a node silently flips bits on
// every read. The checksum layer demotes its columns to erasures and
// every byte still reads back exactly — the paper's fault tolerance (r
// for unimportant, r+g for important sub-stripes) absorbs one node.
func TestChaosCorruptionWithinTolerance(t *testing.T) {
	out := chaostest.Run(t, chaostest.Scenario{
		Seed:     11,
		Schedule: "node=2,op=read,fault=corrupt,bytes=2",
	})
	if len(out.FirstRead.LostSegments) != 0 {
		t.Fatalf("within-tolerance corruption lost segments: %v", out.FirstRead.LostSegments)
	}
	if out.FirstRead.ChecksumFailures == 0 {
		t.Fatal("corruption went undetected")
	}
	if out.Injector.Stats().CorruptReads == 0 {
		t.Fatal("injector never fired")
	}
	if st := out.Store.Stats(); st.ChecksumFailures == 0 || st.DegradedSubReads == 0 {
		t.Fatalf("stats missed the demotions: %+v", st)
	}
}

// TestChaosBeyondToleranceApproximate: two corrupting nodes inside the
// same local stripe exceed the unimportant tolerance (r=1) but stay
// within the important one (r+g=3): unimportant segments come back
// zero-filled and flagged approximate, important ones exact.
func TestChaosBeyondToleranceApproximate(t *testing.T) {
	// Find two data nodes of local stripe 0 via a throwaway store.
	probe, err := store.Open(storeConfig())
	if err != nil {
		t.Fatal(err)
	}
	code := probe.Code()
	// Pick a local stripe that owns unimportant rows (in the Uneven
	// structure the important rows concentrate on one stripe), then two
	// of its data nodes.
	params := code.Params()
	target := -1
	for l := 0; l < params.H && target < 0; l++ {
		for m := 0; m < params.H; m++ {
			if !code.Important(l, m) {
				target = l
				break
			}
		}
	}
	if target < 0 {
		t.Fatal("no unimportant sub-stripes in test code")
	}
	var group []int
	for _, ni := range code.DataNodeIndexes() {
		if code.StripeOf(ni) == target {
			group = append(group, ni)
		}
		if len(group) == 2 {
			break
		}
	}
	out := chaostest.Run(t, chaostest.Scenario{
		Seed: 12,
		Rules: []chaos.Rule{
			{Node: group[0], Stripe: chaos.Any, Op: chaos.OpRead, Kind: chaos.FaultCorrupt},
			{Node: group[1], Stripe: chaos.Any, Op: chaos.OpRead, Kind: chaos.FaultCorrupt},
		},
	})
	if len(out.FirstRead.Approximate) == 0 {
		t.Fatal("beyond-tolerance unimportant loss not flagged approximate")
	}
	// Every lost segment must be unimportant (harness enforces exactness
	// and flagging; this checks the loss set is not empty noise).
	if len(out.FirstRead.LostSegments) != len(out.FirstRead.Approximate) {
		t.Fatalf("important data lost: lost=%v approx=%v",
			out.FirstRead.LostSegments, out.FirstRead.Approximate)
	}
}

// TestChaosTransientNodeNeverFailsReads: a 30% flaky node must cause
// zero failed or lost reads — only elevated retry counters.
func TestChaosTransientNodeNeverFailsReads(t *testing.T) {
	out := chaostest.Run(t, chaostest.Scenario{
		Seed:     13,
		Schedule: "node=1,fault=transient,rate=0.3",
		Retry:    store.RetryPolicy{MaxAttempts: 6, BaseBackoff: 50 * time.Microsecond, HedgeDelay: -1},
		// Generous thresholds so a 30% error rate never condemns the node.
		Health: store.HealthPolicy{SuspectAfter: 4, FailAfter: 1000, ProbationOK: 2},
	})
	if len(out.FirstRead.LostSegments) != 0 || len(out.FinalRead.LostSegments) != 0 {
		t.Fatalf("transient faults lost data: first=%v final=%v",
			out.FirstRead.LostSegments, out.FinalRead.LostSegments)
	}
	st := out.Store.Stats()
	if st.Retries == 0 {
		t.Fatal("30% transient node produced no retries")
	}
	if st.DownNodes != 0 {
		t.Fatalf("flaky node wrongly health-failed: %+v", st)
	}
}

// TestChaosTornWriteHealedByScrub: torn (partial) writes during ingest
// leave truncated columns; reads demote the ones their plans touch,
// scrub's full-width verification catches the rest, the scrubber
// rebuilds them once the fault is cleared, and after healing reads are
// exact. (Minimal-read planning means a healthy Get no longer touches
// columns it does not need, so first-read demotes alone are not
// guaranteed — detection must happen by scrub at the latest.)
func TestChaosTornWriteHealedByScrub(t *testing.T) {
	out := chaostest.Run(t, chaostest.Scenario{
		Seed:              14,
		Schedule:          "node=3,op=write,fault=torn,keep=0.5",
		ClearBeforeRepair: true,
	})
	if out.FirstRead.ChecksumFailures == 0 && out.Scrub.ChecksumFailures == 0 {
		t.Fatal("torn columns never demoted (neither read nor scrub)")
	}
	if len(out.FirstRead.LostSegments) != 0 {
		t.Fatalf("one torn node lost segments: %v", out.FirstRead.LostSegments)
	}
	if out.Scrub.Healed == 0 && out.Repair.ShardsHealed == 0 {
		t.Fatalf("torn columns never healed: scrub=%+v repair=%+v", out.Scrub, out.Repair)
	}
	if out.FinalRead.ChecksumFailures != 0 {
		t.Fatalf("final read still demoting after heal: %+v", out.FinalRead)
	}
}

// TestChaosPermanentErrorDrivesHealthFSM: a node that errors on every
// I/O walks healthy → suspect → failed within the configured
// thresholds; reads stay exact throughout; after the faulty hardware is
// replaced (rules cleared) repair rebuilds it back to healthy.
func TestChaosPermanentErrorDrivesHealthFSM(t *testing.T) {
	inj := chaos.NewInjector(15, chaos.Rule{Node: 2, Stripe: chaos.Any, Kind: chaos.FaultTransient})
	cfg := storeConfig()
	cfg.WrapIO = inj.Wrap
	cfg.Retry = store.RetryPolicy{MaxAttempts: 3, BaseBackoff: 20 * time.Microsecond, HedgeDelay: -1, Seed: 15}
	cfg.Health = store.HealthPolicy{SuspectAfter: 2, FailAfter: 5, ProbationOK: 3}
	s, err := store.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	segs := chaostest.GenSegments(15, 12, 4)
	if err := s.Put("video", segs); err != nil {
		t.Fatal(err)
	}
	// Ingest writes already hit the erroring node; drive reads until the
	// FSM condemns it (bounded so a bug cannot hang the test).
	var state store.HealthState
	for i := 0; i < 20; i++ {
		got, rep, err := s.Get("video")
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.LostSegments) != 0 {
			t.Fatalf("read %d lost segments: %v", i, rep.LostSegments)
		}
		for j, seg := range got {
			if !bytes.Equal(seg.Data, segs[j].Data) {
				t.Fatalf("read %d: segment %d corrupted", i, seg.ID)
			}
		}
		if state = s.NodeHealth()[2]; state == store.HealthFailed {
			break
		}
	}
	if state != store.HealthFailed {
		t.Fatalf("permanently erroring node never condemned: %v", state)
	}
	if st := s.Stats(); st.DownNodes != 1 {
		t.Fatalf("DownNodes=%d, want 1: %+v", st.DownNodes, st)
	}
	// Replace the faulty hardware and rebuild.
	inj.ClearNode(2)
	rep, err := s.RepairAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShardsHealed == 0 {
		t.Fatalf("repair rebuilt nothing: %+v", rep)
	}
	if got := s.NodeHealth()[2]; got != store.HealthHealthy {
		t.Fatalf("node not healthy after repair: %v", got)
	}
	got, gr, err := s.Get("video")
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.LostSegments) != 0 || gr.ChecksumFailures != 0 {
		t.Fatalf("post-repair read degraded: %+v", gr)
	}
	for j, seg := range got {
		if !bytes.Equal(seg.Data, segs[j].Data) {
			t.Fatalf("post-repair segment %d corrupted", seg.ID)
		}
	}
}

// TestChaosHedgedReadBeatsStraggler: the first read of a straggling
// node sleeps far past the hedge delay; the hedged attempt (the rule's
// single firing already spent) answers first and wins.
func TestChaosHedgedReadBeatsStraggler(t *testing.T) {
	inj := chaos.NewInjector(16, chaos.Rule{
		Node: 1, Stripe: chaos.Any, Op: chaos.OpRead,
		Kind: chaos.FaultLatency, Latency: 50 * time.Millisecond, Count: 1,
	})
	cfg := storeConfig()
	cfg.WrapIO = inj.Wrap
	cfg.Retry = store.RetryPolicy{HedgeDelay: 1 * time.Millisecond, OpDeadline: 2 * time.Second, Seed: 16}
	s, err := store.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	segs := chaostest.GenSegments(16, 8, 4)
	if err := s.Put("video", segs); err != nil {
		t.Fatal(err)
	}
	got, rep, err := s.Get("video")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LostSegments) != 0 {
		t.Fatalf("straggler lost segments: %v", rep.LostSegments)
	}
	for j, seg := range got {
		if !bytes.Equal(seg.Data, segs[j].Data) {
			t.Fatalf("segment %d corrupted", seg.ID)
		}
	}
	st := s.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedging never engaged: %+v", st)
	}
}

// TestChaosRandomizedCycles runs seeded randomized fault schedules
// (plus one crashed node) through full ingest → degraded-read → repair
// → scrub cycles. The harness asserts the exact-or-flagged contract on
// every read; here we only pick the seeds.
func TestChaosRandomizedCycles(t *testing.T) {
	nodes := 14 // total shards of the default RS(3,1,2)/h=3 code
	for seed := int64(100); seed < 106; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		sc := chaostest.Scenario{
			Seed:              seed,
			Rules:             chaostest.RandomRules(rng, nodes, 2),
			FailNodes:         []int{rng.Intn(nodes)},
			ClearBeforeRepair: true,
		}
		out := chaostest.Run(t, sc)
		// After clearing faults and repairing, nothing may still be
		// demoting: the final read is clean-path.
		if out.FinalRead.ChecksumFailures != 0 {
			t.Fatalf("seed %d: final read still demoting: %+v", seed, out.FinalRead)
		}
	}
}

// TestChaosPlannedReadEscalation: a corrupting node sits inside the
// minimal read plans, so planned reads demote it and must escalate —
// widen the erased set, re-plan, decode — without ever returning wrong
// bytes. The harness enforces exact-or-flagged on every phase; here we
// additionally drive GetSegment (the partial-read fast path) against
// the live injector and require exact bytes from every segment.
func TestChaosPlannedReadEscalation(t *testing.T) {
	out := chaostest.Run(t, chaostest.Scenario{
		Seed:              31,
		Schedule:          "node=0,op=read,fault=corrupt,bytes=2",
		ClearBeforeRepair: true,
	})
	if out.FirstRead.ChecksumFailures == 0 {
		t.Fatal("corrupting node inside the plan never demoted")
	}
	if st := out.Store.Stats(); st.DegradedSubReads == 0 {
		t.Fatalf("escalation never decoded around the demoted node: %+v", st)
	}
	// Re-arm the fault (ClearBeforeRepair dropped it) and walk the
	// segment fast path through the same ladder.
	out.Injector.AddRules(chaos.Rule{
		Node: 0, Stripe: chaos.Any, Op: chaos.OpRead, Kind: chaos.FaultCorrupt, Bytes: 2,
	})
	for _, want := range out.Segments {
		got, err := out.Store.GetSegment("video", want.ID)
		if err != nil {
			t.Fatalf("segment %d: %v", want.ID, err)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("segment %d silently corrupted through escalation", want.ID)
		}
	}
}

// TestChaosPartialReadCorruption: a rule gated to op=readat corrupts
// only partial-column reads, leaving whole-column reads clean. The
// harness phases (Get-based) must sail through untouched; GetSegment
// must catch the corruption on the per-sub-block checksum and escalate
// to exact bytes.
func TestChaosPartialReadCorruption(t *testing.T) {
	out := chaostest.Run(t, chaostest.Scenario{
		Seed:     32,
		Schedule: "node=1,op=readat,fault=corrupt,bytes=1",
	})
	if out.FirstRead.ChecksumFailures != 0 {
		t.Fatalf("readat-gated rule fired on whole-column reads: %+v", out.FirstRead)
	}
	for _, want := range out.Segments {
		got, err := out.Store.GetSegment("video", want.ID)
		if err != nil {
			t.Fatalf("segment %d: %v", want.ID, err)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("segment %d silently corrupted via partial read", want.ID)
		}
	}
	if out.Injector.Stats().CorruptReads == 0 {
		t.Fatal("readat rule never fired — partial reads not reaching the injector")
	}
}

// storeConfig mirrors the internal test config for the external
// (store_test) package.
func storeConfig() store.Config {
	return store.Config{
		Code: core.Params{
			Family: core.FamilyRS, K: 3, R: 1, G: 2, H: 3, Structure: core.Uneven,
		},
		NodeSize: 3 * 512,
	}
}

// flipByteInFile XORs one byte of a file in place.
func flipByteInFile(t *testing.T, dir, name string, off int) {
	t.Helper()
	path := filepath.Join(dir, name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= len(raw) {
		t.Fatalf("file %s too short (%d bytes) to flip offset %d", name, len(raw), off)
	}
	raw[off] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestChaosLoadWithLenientHealsCorruptNodeFile is the persistence leg:
// a bit-flipped node file fails strict Load with ErrCorrupted but loads
// leniently as a failed node that repair rebuilds.
func TestChaosLoadWithLenientHealsCorruptNodeFile(t *testing.T) {
	s, err := store.Open(storeConfig())
	if err != nil {
		t.Fatal(err)
	}
	segs := chaostest.GenSegments(17, 10, 4)
	if err := s.Put("video", segs); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	flipByteInFile(t, dir, "node002.00000001.gob", 20)
	if _, err := store.Load(dir); !errors.Is(err, store.ErrCorrupted) {
		t.Fatalf("strict load of corrupt node file: %v, want ErrCorrupted", err)
	}
	ls, err := store.LoadWith(dir, store.LoadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if fn := ls.FailedNodes(); len(fn) != 1 || fn[0] != 2 {
		t.Fatalf("corrupt node file not demoted to failure: %v", fn)
	}
	if _, err := ls.RepairAll(); err != nil {
		t.Fatal(err)
	}
	got, rep, err := ls.Get("video")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LostSegments) != 0 {
		t.Fatalf("lenient load + repair lost segments: %v", rep.LostSegments)
	}
	for j, seg := range got {
		if !bytes.Equal(seg.Data, segs[j].Data) {
			t.Fatalf("segment %d corrupted after lenient load", seg.ID)
		}
	}
}

// TestChaosCorruptReadDemotesAndCounts pins the demotion accounting on
// the partial-read fast path: a CRC mismatch detected by getSegmentFast
// must (a) increment store_checksum_demotions_total, (b) feed the health
// FSM's corruption streak so a persistently lying node turns Suspect,
// and (c) never surface wrong bytes — the read escalates and decodes
// around the bad column. Before the fix, the fast path silently widened
// the erasure set without recording the demotion anywhere, so a node
// returning garbage on every partial read stayed Healthy forever.
func TestChaosCorruptReadDemotesAndCounts(t *testing.T) {
	out := chaostest.Run(t, chaostest.Scenario{
		Seed:     33,
		Schedule: "node=1,op=readat,fault=corrupt,bytes=1",
	})
	if got := out.Store.Stats().ChecksumDemotions; got != 0 {
		t.Fatalf("whole-column phases demoted %d times under a readat-only rule", got)
	}
	for pass := 0; pass < 3; pass++ {
		for _, want := range out.Segments {
			got, err := out.Store.GetSegment("video", want.ID)
			if err != nil {
				t.Fatalf("pass %d segment %d: %v", pass, want.ID, err)
			}
			if !bytes.Equal(got.Data, want.Data) {
				t.Fatalf("pass %d segment %d: wrong bytes despite demotion", pass, want.ID)
			}
		}
	}
	st := out.Store.Stats()
	if st.ChecksumDemotions == 0 {
		t.Fatal("corrupt partial reads never counted as checksum demotions")
	}
	// Every partial read of node 1 fails its CRC, so its corruption
	// streak can only grow: three passes over all segments must push it
	// past SuspectAfter. Other nodes read clean and must stay Healthy.
	health := out.Store.NodeHealth()
	if health[1] == store.HealthHealthy {
		t.Fatalf("node 1 still Healthy after %d checksum demotions", st.ChecksumDemotions)
	}
	for ni, h := range health {
		if ni != 1 && h != store.HealthHealthy {
			t.Fatalf("clean node %d demoted to %v", ni, h)
		}
	}
}
