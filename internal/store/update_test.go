package store

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"approxcode/internal/core"
)

func TestUpdateSegmentRoundTrip(t *testing.T) {
	segs := makeSegments(t, 30, 6, 31)
	s := openWith(t, segs)
	rng := rand.New(rand.NewSource(32))
	// Update several segments (both tiers, incl. multi-extent ones).
	for _, id := range []int{0, 3, 7, 12, 29} {
		newData := make([]byte, len(segs[id].Data))
		rng.Read(newData)
		if err := s.UpdateSegment("video", id, newData); err != nil {
			t.Fatalf("update %d: %v", id, err)
		}
		segs[id].Data = newData
	}
	got, rep, err := s.Get("video")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("get: %v %+v", err, rep)
	}
	checkSegments(t, got, segs, nil)
	// Parity must be consistent: scrub clean.
	scrub, err := s.Scrub()
	if err != nil || len(scrub.Corrupt) != 0 {
		t.Fatalf("scrub after updates: %v %+v", err, scrub)
	}
}

func TestUpdateThenFailureStillRecovers(t *testing.T) {
	// The real point of incremental updates: parity stays live. Update,
	// then crash nodes, then verify the updated data reconstructs.
	segs := makeSegments(t, 24, 6, 33)
	s := openWith(t, segs)
	newData := bytes.Repeat([]byte{0x5A}, len(segs[5].Data))
	if err := s.UpdateSegment("video", 5, newData); err != nil {
		t.Fatal(err)
	}
	segs[5].Data = newData
	dn := s.Code().DataNodeIndexes()
	if err := s.FailNodes(dn[0]); err != nil {
		t.Fatal(err)
	}
	got, rep, err := s.Get("video")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("degraded get after update: %v %+v", err, rep)
	}
	checkSegments(t, got, segs, nil)
}

func TestUpdateHealsCorruptColumnBeforeDelta(t *testing.T) {
	segs := makeSegments(t, 24, 6, 36)
	s := openWith(t, segs)
	obj, ok := s.objects.get("video")
	if !ok {
		t.Fatal("object missing")
	}
	st := -1
	for _, e := range obj.extents {
		if e.seg == 5 {
			st = e.stripe
			break
		}
	}
	if st < 0 {
		t.Fatal("segment 5 has no extents")
	}
	// Corrupt one byte of a parity column in segment 5's stripe. An
	// update that consumed the column unverified would fold the damage
	// into its parity delta and re-checksum it as truth — undetectable
	// until a reconstruction leaning on that parity returns wrong bytes.
	parity := -1
	for i := range s.nodes {
		if s.code.Role(i) != core.RoleData {
			parity = i
			break
		}
	}
	if err := s.CorruptByte("video", st, parity, 2); err != nil {
		t.Fatal(err)
	}
	newData := bytes.Repeat([]byte{0xA7}, len(segs[5].Data))
	if err := s.UpdateSegment("video", 5, newData); err != nil {
		t.Fatalf("update over corrupt parity: %v", err)
	}
	segs[5].Data = newData
	// The update must have healed the parity before applying its delta:
	// a degraded read that decodes through it is byte-exact.
	dn := s.Code().DataNodeIndexes()
	if err := s.FailNodes(dn[0]); err != nil {
		t.Fatal(err)
	}
	got, rep, err := s.Get("video")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("degraded get after update: %v %+v", err, rep)
	}
	checkSegments(t, got, segs, nil)
}

func TestUpdateSegmentValidation(t *testing.T) {
	segs := makeSegments(t, 10, 5, 34)
	s := openWith(t, segs)
	if err := s.UpdateSegment("nope", 0, []byte{1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := s.UpdateSegment("video", 99, []byte{1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := s.UpdateSegment("video", 0, []byte{1}); err == nil {
		t.Fatal("resize accepted")
	}
	if err := s.FailNodes(0); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateSegment("video", 0, segs[0].Data); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("degraded update: want ErrUnavailable, got %v", err)
	}
}
