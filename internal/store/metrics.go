package store

import (
	"time"

	"approxcode/internal/gf256"
	"approxcode/internal/obs"
)

// storeMetrics is the store's registry-backed telemetry. It replaces
// the former ad-hoc mutex-guarded counters struct: every counter is an
// atomic (obs.Counter), updated genuinely lock-free from the I/O hot
// paths, and Store.Stats is a thin view over these handles. Latency
// histograms and spans record only while the registry is enabled; with
// the default private disabled registry they cost one atomic load.
type storeMetrics struct {
	reg *obs.Registry

	// Self-healing I/O counters (the Stats robustness view).
	retries          *obs.Counter
	hedges           *obs.Counter
	hedgeWins        *obs.Counter
	readErrors       *obs.Counter
	checksumFailures *obs.Counter
	// checksumDemotions counts columns/sub-blocks demoted to erasures
	// after a CRC mismatch — incremented at every demote site (whole-
	// column and partial-read fast path alike), alongside the health
	// FSM's corruption streak.
	checksumDemotions *obs.Counter
	shardsHealed      *obs.Counter
	degradedSubReads  *obs.Counter

	// Tier migrations (see internal/tier and store tier.go) and the
	// decoded-segment read cache.
	tierPromotions *obs.Counter
	tierDemotions  *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheBytes     *obs.Gauge
	// migrateSeconds times whole-object migrations; migrateBytes
	// records redundancy bytes written per migration on the histogram's
	// microsecond scale (one "µs" = one byte moved).
	migrateSeconds *obs.Histogram
	migrateBytes   *obs.Histogram

	// Per-attempt NodeIO accounting.
	readAttempts  *obs.Counter
	writeAttempts *obs.Counter
	readBytes     *obs.Counter
	writeBytes    *obs.Counter

	// Read-planning accounting: partial-column reads and their bytes,
	// escalations from a minimal plan to the full-stripe final rung, and
	// per-path plan widths (columns read per planned stripe, recorded on
	// the histogram's microsecond scale: one "µs" = one column).
	partialReads     *obs.Counter
	partialReadBytes *obs.Counter
	planFallbacks    *obs.Counter
	readPlanWidth    *obs.Histogram
	repairPlanWidth  *obs.Histogram

	// Repair orchestrator progress (the queue gauge is set by the
	// active run; counters accumulate across runs).
	repairQueueDepth      *obs.Gauge
	repairBytesImportant  *obs.Counter
	repairBytesBestEffort *obs.Counter
	repairReadBytes       *obs.Counter
	repairCheckpoints     *obs.Counter
	repairsResumed        *obs.Counter
	// Topology split of repair survivor reads: a byte is rack-local
	// when the column read shares a rack with a failed node being
	// rebuilt (see Repair.accountRead).
	repairBytesRackLocal *obs.Counter
	repairBytesCrossRack *obs.Counter

	// Admission control: ops currently admitted / waiting for a slot,
	// and ops shed with ErrOverloaded.
	inflight     *obs.Gauge
	admitWaiting *obs.Gauge
	overloaded   *obs.Counter

	// Group-commit journal: fsync batches, records coalesced into them,
	// and batch payload bytes. records/batches is the amortization
	// factor the pr6 bench reports.
	journalBatches    *obs.Counter
	journalRecords    *obs.Counter
	journalBatchBytes *obs.Counter

	// Per-operation latency histograms.
	opPut        *obs.Histogram
	opGet        *obs.Histogram
	opGetSegment *obs.Histogram
	opUpdate     *obs.Histogram
	opRepair     *obs.Histogram
	opScrub      *obs.Histogram
	nodeRead     *obs.Histogram
	nodeWrite    *obs.Histogram
}

// newStoreMetrics binds the store's metric handles to reg. A nil reg
// gets a fresh private disabled registry, so counters (and therefore
// Stats) work even for callers that never asked for observability.
func newStoreMetrics(reg *obs.Registry) storeMetrics {
	if reg == nil {
		reg = obs.NewRegistry(false)
	}
	return storeMetrics{
		reg:              reg,
		retries:          reg.Counter("store_retries_total"),
		hedges:           reg.Counter("store_hedges_total"),
		hedgeWins:        reg.Counter("store_hedge_wins_total"),
		readErrors:       reg.Counter("store_read_errors_total"),
		checksumFailures: reg.Counter("store_checksum_failures_total"),
		checksumDemotions: reg.Counter("store_checksum_demotions_total"),
		shardsHealed:     reg.Counter("store_shards_healed_total"),
		degradedSubReads: reg.Counter("store_degraded_sub_reads_total"),

		tierPromotions: reg.Counter("store_tier_promotions_total"),
		tierDemotions:  reg.Counter("store_tier_demotions_total"),
		cacheHits:      reg.Counter("store_cache_hits_total"),
		cacheMisses:    reg.Counter("store_cache_misses_total"),
		cacheEvictions: reg.Counter("store_cache_evictions_total"),
		cacheBytes:     reg.Gauge("store_cache_bytes"),
		migrateSeconds: reg.Histogram("store_tier_migrate_seconds"),
		migrateBytes:   reg.Histogram("store_tier_migrate_bytes"),
		readAttempts:     reg.Counter("store_node_read_attempts_total"),
		writeAttempts:    reg.Counter("store_node_write_attempts_total"),
		readBytes:        reg.Counter("store_node_read_bytes_total"),
		writeBytes:       reg.Counter("store_node_write_bytes_total"),

		partialReads:     reg.Counter("store_partial_reads_total"),
		partialReadBytes: reg.Counter("store_partial_read_bytes_total"),
		planFallbacks:    reg.Counter("store_plan_fallbacks_total"),
		readPlanWidth:    reg.Histogram("store_read_plan_width_cols"),
		repairPlanWidth:  reg.Histogram("store_repair_plan_width_cols"),

		repairQueueDepth:      reg.Gauge("store_repair_queue_depth"),
		repairBytesImportant:  reg.Counter("store_repair_bytes_important_total"),
		repairBytesBestEffort: reg.Counter("store_repair_bytes_unimportant_total"),
		repairReadBytes:       reg.Counter("store_repair_read_bytes_total"),
		repairCheckpoints:     reg.Counter("store_repair_checkpoints_total"),
		repairsResumed:        reg.Counter("store_repairs_resumed_total"),
		repairBytesRackLocal:  reg.Counter("store_repair_read_bytes_rack_local_total"),
		repairBytesCrossRack:  reg.Counter("store_repair_read_bytes_cross_rack_total"),

		inflight:     reg.Gauge("store_inflight_ops"),
		admitWaiting: reg.Gauge("store_admission_waiting"),
		overloaded:   reg.Counter("store_overloaded_total"),

		journalBatches:    reg.Counter("store_journal_batches_total"),
		journalRecords:    reg.Counter("store_journal_records_total"),
		journalBatchBytes: reg.Counter("store_journal_batch_bytes_total"),

		opPut:        reg.Histogram("store_put_seconds"),
		opGet:        reg.Histogram("store_get_seconds"),
		opGetSegment: reg.Histogram("store_get_segment_seconds"),
		opUpdate:     reg.Histogram("store_update_seconds"),
		opRepair:     reg.Histogram("store_repair_seconds"),
		opScrub:      reg.Histogram("store_scrub_seconds"),
		nodeRead:     reg.Histogram("store_node_read_seconds"),
		nodeWrite:    reg.Histogram("store_node_write_seconds"),
	}
}

// registerGauges exposes polled store state on the registry. First
// registration of a name wins, so when several stores share one
// registry the gauges describe the first store (counters, which
// accumulate across all sharers, are unaffected).
func (s *Store) registerGauges() {
	reg := s.metrics.reg
	reg.GaugeFunc("store_objects", func() int64 {
		return int64(s.objects.count())
	})
	reg.GaugeFunc("store_nodes", func() int64 { return int64(len(s.nodes)) })
	reg.GaugeFunc("store_failed_nodes", func() int64 { return int64(len(s.FailedNodes())) })
	reg.GaugeFunc("store_suspect_nodes", func() int64 {
		suspect, _ := s.health.counts()
		return int64(suspect)
	})
	reg.GaugeFunc("store_down_nodes", func() int64 {
		_, down := s.health.counts()
		return int64(down)
	})
	reg.GaugeFunc("store_repair_checkpoint_age_seconds", func() int64 {
		last := s.lastCkpt.Load()
		if last == 0 {
			return -1 // no checkpoint yet
		}
		return int64(time.Since(time.Unix(0, last)).Seconds())
	})
	reg.Info("gf256_active_kernel", gf256.Kernel)
}

// Obs returns the registry backing the store's metrics (the one passed
// in Config.Obs, or the store's private registry).
func (s *Store) Obs() *obs.Registry { return s.metrics.reg }
