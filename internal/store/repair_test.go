package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"approxcode/internal/chaos"
)

// tierSegments builds a workload whose stripes split cleanly into
// repair tiers: two small important segments (stripe 0's important
// sub-blocks) plus enough unimportant ones to spill into a second
// stripe that carries no important extents at all.
func tierSegments(t *testing.T, seed int64) []Segment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var segs []Segment
	id := 0
	for i := 0; i < 2; i++ {
		data := make([]byte, 200)
		rng.Read(data)
		segs = append(segs, Segment{ID: id, Important: true, Data: data})
		id++
	}
	for i := 0; i < 24; i++ {
		data := make([]byte, 400)
		rng.Read(data)
		segs = append(segs, Segment{ID: id, Important: false, Data: data})
		id++
	}
	return segs
}

// openDurableWith opens a journaled store in a temp dir and puts
// objects "v0".."vN-1" of tierSegments workloads.
func openDurableWith(t *testing.T, objects int, seed int64, cfg Config) (*Store, string, [][]Segment) {
	t.Helper()
	dir := t.TempDir()
	s, _, err := OpenDurable(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	var all [][]Segment
	for i := 0; i < objects; i++ {
		segs := tierSegments(t, seed+int64(i))
		if err := s.Put(objName(i), segs); err != nil {
			t.Fatal(err)
		}
		all = append(all, segs)
	}
	return s, dir, all
}

func objName(i int) string { return fmt.Sprintf("v%d", i) }

// failMixedTierNodes fails one data node holding important extents
// (local stripe 0 under the Uneven structure) and one holding only
// unimportant ones, so the repair queue spans both tiers.
func failMixedTierNodes(t *testing.T, s *Store) []int {
	t.Helper()
	data := s.code.DataNodeIndexes()
	victims := []int{data[0], data[s.code.Params().K]}
	if err := s.FailNodes(victims...); err != nil {
		t.Fatal(err)
	}
	return victims
}

// checkpointTiers reads the journal and maps every repair checkpoint
// record to its stripe's tier, in durable commit order.
func checkpointTiers(t *testing.T, s *Store, dir string, failed []int) []int {
	t.Helper()
	recs, _, _, err := readJournal(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	var tiers []int
	for _, r := range recs {
		if r.Type != recRepairStripe {
			continue
		}
		var sr repairStripeRecord
		if err := r.decode(&sr); err != nil {
			t.Fatal(err)
		}
		obj, _ := s.objects.get(sr.Object)
		if obj == nil {
			t.Fatalf("checkpoint for unknown object %q", sr.Object)
		}
		important := make(map[int]bool, len(obj.segments))
		for _, seg := range obj.segments {
			important[seg.ID] = seg.Important
		}
		tiers = append(tiers, s.stripeTier(obj, sr.Stripe, failed, important))
	}
	return tiers
}

// assertTierBarrier fails if an important-tier stripe was committed
// after any best-effort stripe in the sequence.
func assertTierBarrier(t *testing.T, tiers []int, label string) {
	t.Helper()
	seenTier1 := false
	for i, tr := range tiers {
		if tr == 1 {
			seenTier1 = true
		} else if seenTier1 {
			t.Fatalf("%s: important stripe committed at position %d after a best-effort stripe: %v", label, i, tiers)
		}
	}
}

func checkAllObjects(t *testing.T, s *Store, all [][]Segment) {
	t.Helper()
	for i, segs := range all {
		got, rep, err := s.Get(objName(i))
		if err != nil || len(rep.LostSegments) != 0 {
			t.Fatalf("get %s: %v %+v", objName(i), err, rep)
		}
		checkSegments(t, got, segs, nil)
	}
}

// TestRepairPriorityOrdering: the journal's checkpoint commit order
// proves the tier barrier — every important-tier stripe is durably
// committed before the first best-effort stripe.
func TestRepairPriorityOrdering(t *testing.T) {
	s, dir, all := openDurableWith(t, 2, 51, testConfig())
	failed := failMixedTierNodes(t, s)
	rep, err := s.RepairAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.StripesRepaired == 0 || rep.Aborted {
		t.Fatalf("repair did not run to completion: %+v", rep)
	}
	tiers := checkpointTiers(t, s, dir, failed)
	if len(tiers) != rep.StripesRepaired {
		t.Fatalf("%d checkpoints for %d repaired stripes", len(tiers), rep.StripesRepaired)
	}
	n0 := 0
	for _, tr := range tiers {
		if tr == 0 {
			n0++
		}
	}
	if n0 == 0 || n0 == len(tiers) {
		t.Fatalf("workload produced a single tier (%d/%d important) — ordering untested", n0, len(tiers))
	}
	assertTierBarrier(t, tiers, "full run")
	if len(s.FailedNodes()) != 0 {
		t.Fatalf("failed nodes after repair: %v", s.FailedNodes())
	}
	checkAllObjects(t, s, all)
}

// TestRepairResumeFromCheckpoint: kill the repair mid-run, recover,
// and resume. Recovery detects the interrupted run and its checkpointed
// stripes; the resumed run skips exactly those, keeps the tier barrier
// for the remainder, and finishes the rebuild byte-exactly.
func TestRepairResumeFromCheckpoint(t *testing.T) {
	crasher := chaos.NewCrasher()
	cfg := testConfig()
	cfg.Crasher = crasher
	cfg.RepairWorkers = 1 // deterministic checkpoint count before the kill
	s, dir, all := openDurableWith(t, 2, 61, cfg)
	failMixedTierNodes(t, s)

	const killAt = 3 // third checkpoint attempt dies => two durable checkpoints
	crasher.Arm("repair.before-checkpoint", killAt)
	ce := crasher.Run(func() {
		if _, err := s.RepairAll(); err != nil {
			t.Errorf("repair returned instead of crashing: %v", err)
		}
	})
	if ce == nil {
		t.Fatal("repair was not killed")
	}
	crasher.Disarm()

	rs, rrep, err := Recover(dir, LoadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if !rrep.RepairPending {
		t.Fatalf("interrupted repair not detected: %+v", rrep)
	}
	if rrep.RepairCheckpointedStripes != killAt-1 {
		t.Fatalf("checkpointed stripes %d, want %d", rrep.RepairCheckpointedStripes, killAt-1)
	}
	failed := rs.FailedNodes()
	if len(failed) == 0 {
		t.Fatal("nodes unfailed without a repair-done record")
	}

	r, err := rs.StartRepair(RepairOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.StripesResumed != killAt-1 {
		t.Fatalf("resumed run skipped %d stripes, want %d", rep.StripesResumed, killAt-1)
	}
	if got := rs.metrics.repairsResumed.Value(); got != 1 {
		t.Fatalf("store_repairs_resumed_total = %d, want 1", got)
	}
	if len(rs.FailedNodes()) != 0 {
		t.Fatalf("failed nodes after resumed repair: %v", rs.FailedNodes())
	}
	// The tier barrier holds per run: the resumed run's checkpoint
	// suffix must again front-load whatever important stripes remain.
	tiers := checkpointTiers(t, rs, dir, failed)
	if len(tiers) != (killAt-1)+rep.StripesRepaired {
		t.Fatalf("journal holds %d checkpoints, want %d", len(tiers), (killAt-1)+rep.StripesRepaired)
	}
	assertTierBarrier(t, tiers[killAt-1:], "resumed run")
	checkAllObjects(t, rs, all)
}

// TestRepairPauseAbortResume exercises the run-control surface on one
// throttled run: Pause stalls the queue without releasing the repair
// slot, Abort stops it with progress parked, and a Resume run skips the
// aborted run's checkpointed stripes and finishes the job.
func TestRepairPauseAbortResume(t *testing.T) {
	cfg := testConfig()
	s, _, all := openDurableWith(t, 2, 71, cfg)
	failMixedTierNodes(t, s)

	// Each stripe writes back 2 failed columns of NodeSize bytes
	// (3072 B); a 2048 B/s budget forces ~0.5 s of debt before the very
	// first checkpoint, giving Pause a wide window to land in.
	r, err := s.StartRepair(RepairOptions{Workers: 1, MaxBytesPerSec: 2048})
	if err != nil {
		t.Fatal(err)
	}
	r.Pause()
	if !r.Progress().Paused {
		t.Fatal("progress does not report paused")
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.Progress().Total == 0 {
		if time.Now().After(deadline) {
			t.Fatal("run never queued its jobs")
		}
		time.Sleep(time.Millisecond)
	}
	p := r.Progress()
	if p.Done >= p.Total {
		t.Fatalf("paused run drained its queue: %+v", p)
	}
	if _, err := s.StartRepair(RepairOptions{}); err != ErrRepairActive {
		t.Fatalf("second StartRepair: %v, want ErrRepairActive", err)
	}
	r.Abort()
	rep, err := r.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Aborted {
		t.Fatalf("abort not reported: %+v", rep)
	}
	if len(s.FailedNodes()) == 0 {
		t.Fatal("aborted run unfailed the nodes")
	}

	r2, err := s.StartRepair(RepairOptions{Resume: true})
	if err != nil {
		t.Fatalf("repair slot not released after abort: %v", err)
	}
	rep2, err := r2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Aborted {
		t.Fatalf("resumed run aborted: %+v", rep2)
	}
	if rep2.StripesResumed != rep.StripesRepaired {
		t.Fatalf("resumed run skipped %d stripes, aborted run checkpointed %d",
			rep2.StripesResumed, rep.StripesRepaired)
	}
	if len(s.FailedNodes()) != 0 {
		t.Fatalf("failed nodes after resumed repair: %v", s.FailedNodes())
	}
	checkAllObjects(t, s, all)
}

// TestRepairBandwidthBudget: a budget of half the measured write-back
// volume must stretch the run past its one-second burst allowance.
func TestRepairBandwidthBudget(t *testing.T) {
	cfg := testConfig()
	s, _, all := openDurableWith(t, 2, 91, cfg)
	victims := failMixedTierNodes(t, s)
	r, err := s.StartRepair(RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	volume := r.Progress().BytesRepaired
	if volume == 0 {
		t.Fatal("unthrottled run reports zero bytes repaired")
	}

	if err := s.FailNodes(victims...); err != nil {
		t.Fatal(err)
	}
	r2, err := s.StartRepair(RepairOptions{MaxBytesPerSec: volume / 2})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := r2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// volume/2 burst + volume/2 debt at volume/2 per second ~= 1 s; the
	// bound is loose so scheduler jitter cannot flake it.
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Fatalf("throttled repair of %d bytes finished in %v — token bucket inactive", volume, elapsed)
	}
	if rep.StripesRepaired == 0 || len(s.FailedNodes()) != 0 {
		t.Fatalf("throttled repair incomplete: %+v failed=%v", rep, s.FailedNodes())
	}
	checkAllObjects(t, s, all)
}

// TestScrubRacesRepairOrchestrator runs Scrub concurrently with the
// orchestrator (meant for -race): both traverse the same columns and
// checksum tables and must interleave safely.
func TestScrubRacesRepairOrchestrator(t *testing.T) {
	cfg := testConfig()
	s, _, all := openDurableWith(t, 3, 95, cfg)
	// Corrupt a surviving column (scrub's business) and fail nodes
	// (repair's business).
	if err := s.CorruptByte(objName(0), 0, s.code.DataNodeIndexes()[2], 7); err != nil {
		t.Fatal(err)
	}
	failMixedTierNodes(t, s)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		r, err := s.StartRepair(RepairOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := r.Wait(); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := s.Scrub(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	// A final repair + scrub pass mops up anything the two healed past
	// each other; everything must then read back exactly.
	if _, err := s.RepairAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scrub(); err != nil {
		t.Fatal(err)
	}
	checkAllObjects(t, s, all)
}
