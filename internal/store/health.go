package store

import "sync"

// HealthState is a node's position in the health state machine the
// self-healing read path drives: healthy → suspect → failed on
// error streaks, with probation recovery from suspect back to healthy.
type HealthState int

// Health states.
const (
	// HealthHealthy: the node serves I/O normally.
	HealthHealthy HealthState = iota
	// HealthSuspect: the node crossed the error threshold; it still
	// serves I/O but must string together successes to recover.
	HealthSuspect
	// HealthFailed: the node crossed the failure threshold. Reads skip
	// it (its columns are erasures) until a repair rebuilds it.
	HealthFailed
)

// String implements fmt.Stringer.
func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthSuspect:
		return "suspect"
	case HealthFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// HealthPolicy tunes the per-node health state machine.
type HealthPolicy struct {
	// SuspectAfter consecutive I/O errors demote a healthy node to
	// suspect (default 3).
	SuspectAfter int
	// FailAfter consecutive I/O errors demote a node to failed
	// (default 10).
	FailAfter int
	// ProbationOK successful operations while suspect promote the node
	// back to healthy (default 5).
	ProbationOK int
}

func (p HealthPolicy) withDefaults() HealthPolicy {
	if p.SuspectAfter <= 0 {
		p.SuspectAfter = 3
	}
	if p.FailAfter <= 0 {
		p.FailAfter = 10
	}
	if p.FailAfter < p.SuspectAfter {
		p.FailAfter = p.SuspectAfter
	}
	if p.ProbationOK <= 0 {
		p.ProbationOK = 5
	}
	return p
}

type nodeHealth struct {
	mu          sync.Mutex
	state       HealthState
	consecFails int
	// corrupts is the checksum-demotion streak. It is tracked apart
	// from consecFails because the transport-level ok() recorded by a
	// successful read would otherwise reset it before the caller's CRC
	// check could fail: only a read of this node that VERIFIES clears
	// it (see verified), so a node persistently serving damaged bytes
	// escalates suspect → failed even though every I/O "succeeds".
	corrupts  int
	probation int
	fails, oks int64
}

// healthTracker applies a HealthPolicy across the store's nodes.
type healthTracker struct {
	policy HealthPolicy
	nodes  []nodeHealth
}

func newHealthTracker(n int, p HealthPolicy) *healthTracker {
	return &healthTracker{policy: p.withDefaults(), nodes: make([]nodeHealth, n)}
}

// state returns the node's current health state.
func (h *healthTracker) state(i int) HealthState {
	nh := &h.nodes[i]
	nh.mu.Lock()
	defer nh.mu.Unlock()
	return nh.state
}

// ok records a successful operation on the node.
func (h *healthTracker) ok(i int) {
	nh := &h.nodes[i]
	nh.mu.Lock()
	defer nh.mu.Unlock()
	nh.oks++
	nh.consecFails = 0
	if nh.state == HealthSuspect {
		nh.probation++
		if nh.probation >= h.policy.ProbationOK {
			nh.state = HealthHealthy
			nh.probation = 0
		}
	}
}

// fail records a failed operation and returns the resulting state.
func (h *healthTracker) fail(i int) HealthState {
	nh := &h.nodes[i]
	nh.mu.Lock()
	defer nh.mu.Unlock()
	nh.fails++
	nh.consecFails++
	nh.probation = 0
	switch {
	case nh.consecFails >= h.policy.FailAfter:
		nh.state = HealthFailed
	case nh.consecFails >= h.policy.SuspectAfter && nh.state == HealthHealthy:
		nh.state = HealthSuspect
	}
	return nh.state
}

// corrupt records a checksum-demoted read: the node's transport
// answered, but with bytes that failed verification. It feeds the same
// suspect/failed thresholds as transport errors through its own
// streak, which only verified (a CRC-clean read of this node) or reset
// clears — so a demote racing an in-flight update is forgiven by the
// next verified read, while genuine stored-data damage keeps the
// streak growing until the node is failed out and repaired.
func (h *healthTracker) corrupt(i int) HealthState {
	nh := &h.nodes[i]
	nh.mu.Lock()
	defer nh.mu.Unlock()
	nh.fails++
	nh.corrupts++
	nh.probation = 0
	switch {
	case nh.corrupts >= h.policy.FailAfter:
		nh.state = HealthFailed
	case nh.corrupts >= h.policy.SuspectAfter && nh.state == HealthHealthy:
		nh.state = HealthSuspect
	}
	return nh.state
}

// verified records a read of the node that passed checksum
// verification, clearing the corruption streak (its bytes are
// demonstrably intact). Probation credit is not granted here — the
// transport-level ok() for the same read already counted it.
func (h *healthTracker) verified(i int) {
	nh := &h.nodes[i]
	nh.mu.Lock()
	defer nh.mu.Unlock()
	nh.corrupts = 0
}

// reset returns the node to healthy (a repair provisioned fresh data).
func (h *healthTracker) reset(i int) {
	nh := &h.nodes[i]
	nh.mu.Lock()
	defer nh.mu.Unlock()
	nh.state = HealthHealthy
	nh.consecFails = 0
	nh.corrupts = 0
	nh.probation = 0
}

// failedNodes lists nodes currently in HealthFailed.
func (h *healthTracker) failedNodes() []int {
	var out []int
	for i := range h.nodes {
		if h.state(i) == HealthFailed {
			out = append(out, i)
		}
	}
	return out
}

// counts tallies nodes per non-healthy state.
func (h *healthTracker) counts() (suspect, failed int) {
	for i := range h.nodes {
		switch h.state(i) {
		case HealthSuspect:
			suspect++
		case HealthFailed:
			failed++
		}
	}
	return
}

// snapshot returns every node's state.
func (h *healthTracker) snapshot() []HealthState {
	out := make([]HealthState, len(h.nodes))
	for i := range h.nodes {
		out[i] = h.state(i)
	}
	return out
}
