package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"approxcode/internal/core"
)

func testConfig() Config {
	return Config{
		Code: core.Params{
			Family: core.FamilyRS, K: 3, R: 1, G: 2, H: 3, Structure: core.Uneven,
		},
		NodeSize: 3 * 512,
	}
}

func makeSegments(t *testing.T, n int, importantEvery int, seed int64) []Segment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	segs := make([]Segment, n)
	for i := range segs {
		data := make([]byte, 100+rng.Intn(400))
		rng.Read(data)
		segs[i] = Segment{ID: i, Important: i%importantEvery == 0, Data: data}
	}
	return segs
}

func openWith(t *testing.T, segs []Segment) *Store {
	t.Helper()
	s, err := Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("video", segs); err != nil {
		t.Fatal(err)
	}
	return s
}

func checkSegments(t *testing.T, got []Segment, want []Segment, skip map[int]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d segments want %d", len(got), len(want))
	}
	byID := make(map[int]Segment, len(got))
	for _, g := range got {
		byID[g.ID] = g
	}
	for _, w := range want {
		g, ok := byID[w.ID]
		if !ok {
			t.Fatalf("segment %d missing", w.ID)
		}
		if skip[w.ID] {
			continue
		}
		if !bytes.Equal(g.Data, w.Data) {
			t.Fatalf("segment %d data differs", w.ID)
		}
		if g.Important != w.Important {
			t.Fatalf("segment %d importance differs", w.ID)
		}
	}
}

func TestOpenValidation(t *testing.T) {
	cfg := testConfig()
	cfg.NodeSize = 1
	if _, err := Open(cfg); err == nil {
		t.Fatal("tiny node size accepted")
	}
	cfg = testConfig()
	cfg.Code.K = 0
	if _, err := Open(cfg); err == nil {
		t.Fatal("bad code params accepted")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	segs := makeSegments(t, 20, 10, 1)
	s := openWith(t, segs)
	got, rep, err := s.Get("video")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LostSegments) != 0 {
		t.Fatalf("healthy store lost segments %v", rep.LostSegments)
	}
	checkSegments(t, got, segs, nil)
}

func TestPutValidation(t *testing.T) {
	s, err := Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("", nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.Put("x", []Segment{{ID: 1}}); err == nil {
		t.Fatal("empty segment accepted")
	}
	if err := s.Put("x", []Segment{{ID: 1, Data: []byte{1}}, {ID: 1, Data: []byte{2}}}); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	if err := s.Put("v", []Segment{{ID: 1, Data: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("v", []Segment{{ID: 1, Data: []byte{1}}}); !errors.Is(err, ErrExists) {
		t.Fatalf("want ErrExists, got %v", err)
	}
	if _, _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestDegradedReadsUnderFailures(t *testing.T) {
	segs := makeSegments(t, 30, 5, 2)
	s := openWith(t, segs)
	// Fail one data node: everything still readable via decode.
	dn := s.Code().DataNodeIndexes()
	if err := s.FailNodes(dn[0]); err != nil {
		t.Fatal(err)
	}
	got, rep, err := s.Get("video")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LostSegments) != 0 {
		t.Fatalf("single failure lost segments %v", rep.LostSegments)
	}
	checkSegments(t, got, segs, nil)
}

func TestImportantSurvivesTripleFailure(t *testing.T) {
	segs := makeSegments(t, 30, 5, 3)
	s := openWith(t, segs)
	dn := s.Code().DataNodeIndexes()
	// Three failures: two on the important stripe (Uneven stripe 0), one
	// on stripe 1.
	if err := s.FailNodes(dn[0], dn[1], dn[3]); err != nil {
		t.Fatal(err)
	}
	got, rep, err := s.Get("video")
	if err != nil {
		t.Fatal(err)
	}
	lost := make(map[int]bool)
	for _, id := range rep.LostSegments {
		lost[id] = true
	}
	for _, seg := range segs {
		if seg.Important && lost[seg.ID] {
			t.Fatalf("important segment %d lost", seg.ID)
		}
	}
	checkSegments(t, got, segs, lost)
	// Lost segments are zero-filled at the right length.
	for _, g := range got {
		if lost[g.ID] && len(g.Data) != len(segs[g.ID].Data) {
			t.Fatalf("lost segment %d has wrong length", g.ID)
		}
	}
	// GetSegment surfaces the loss explicitly.
	if len(rep.LostSegments) > 0 {
		if _, err := s.GetSegment("video", rep.LostSegments[0]); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("want ErrUnavailable, got %v", err)
		}
	}
	var anyImportant int = -1
	for _, seg := range segs {
		if seg.Important {
			anyImportant = seg.ID
			break
		}
	}
	if got, err := s.GetSegment("video", anyImportant); err != nil || !bytes.Equal(got.Data, segs[anyImportant].Data) {
		t.Fatalf("important GetSegment failed: %v", err)
	}
}

func TestRepairRestoresRedundancy(t *testing.T) {
	segs := makeSegments(t, 24, 6, 4)
	s := openWith(t, segs)
	dn := s.Code().DataNodeIndexes()
	if err := s.FailNodes(dn[0], s.Code().TotalShards()-1); err != nil { // data + global parity
		t.Fatal(err)
	}
	rep, err := s.RepairAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.StripesRepaired == 0 || rep.BytesRebuilt == 0 {
		t.Fatalf("repair did nothing: %+v", rep)
	}
	if len(s.FailedNodes()) != 0 {
		t.Fatal("nodes still failed after repair")
	}
	// Everything readable without degradation; scrub is clean.
	got, getRep, err := s.Get("video")
	if err != nil {
		t.Fatal(err)
	}
	if len(getRep.LostSegments) != 0 {
		t.Fatalf("lost segments after repair: %v", getRep.LostSegments)
	}
	checkSegments(t, got, segs, nil)
	scrub, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(scrub.Corrupt) != 0 || scrub.StripesChecked == 0 {
		t.Fatalf("scrub after repair: %+v", scrub)
	}
}

func TestRepairReportsUnrecoverableSegments(t *testing.T) {
	segs := makeSegments(t, 24, 6, 5)
	s := openWith(t, segs)
	dn := s.Code().DataNodeIndexes()
	// Two failures in unimportant stripe 1 (k=3): r=1 exceeded.
	if err := s.FailNodes(dn[3], dn[4]); err != nil {
		t.Fatal(err)
	}
	rep, err := s.RepairAll()
	if err != nil {
		t.Fatal(err)
	}
	lost := rep.LostSegments["video"]
	if len(lost) == 0 {
		t.Fatal("expected lost segments")
	}
	for _, id := range lost {
		if segs[id].Important {
			t.Fatalf("important segment %d reported lost", id)
		}
	}
	// After repair the lost bytes are zero-filled but the object is
	// still fully readable (no failed nodes).
	_, getRep, err := s.Get("video")
	if err != nil {
		t.Fatal(err)
	}
	if len(getRep.LostSegments) != 0 {
		t.Fatal("zero-filled stripes must read without degradation flags")
	}
}

func TestScrubDetectsAndHealsCorruption(t *testing.T) {
	segs := makeSegments(t, 12, 4, 6)
	s := openWith(t, segs)
	if err := s.CorruptByte("video", 0, 1, 7); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	// The checksum layer catches the flipped byte, the scrubber rebuilds
	// the column from survivors and writes it back in place.
	if rep.ChecksumFailures != 1 || rep.Healed != 1 {
		t.Fatalf("scrub missed corruption: %+v", rep)
	}
	if len(rep.Corrupt) != 0 {
		t.Fatalf("healed stripe still flagged corrupt: %+v", rep)
	}
	// The healed column is byte-identical: a second scrub is clean and
	// reads are exact.
	rep, err = s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumFailures != 0 || rep.Healed != 0 || len(rep.Corrupt) != 0 {
		t.Fatalf("second scrub not clean: %+v", rep)
	}
	got, _, err := s.Get("video")
	if err != nil {
		t.Fatal(err)
	}
	checkSegments(t, got, segs, nil)
	if st := s.Stats(); st.ChecksumFailures < 1 || st.ShardsHealed < 1 {
		t.Fatalf("stats missed the heal: %+v", st)
	}
	if err := s.CorruptByte("video", 0, 99, 0); err == nil {
		t.Fatal("bad node accepted")
	}
	if err := s.CorruptByte("nope", 0, 1, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestCorruptionDemotedOnRead(t *testing.T) {
	segs := makeSegments(t, 12, 4, 6)
	s := openWith(t, segs)
	// Corrupt a data column: the read path must detect the checksum
	// mismatch, demote the column to an erasure, and decode around it —
	// the caller sees exact bytes, never silent corruption.
	if err := s.CorruptByte("video", 0, 0, 3); err != nil {
		t.Fatal(err)
	}
	got, rep, err := s.Get("video")
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumFailures == 0 {
		t.Fatal("checksum mismatch not surfaced in GetReport")
	}
	if len(rep.LostSegments) != 0 {
		t.Fatalf("corruption within tolerance lost segments: %v", rep.LostSegments)
	}
	for i, seg := range got {
		if !bytes.Equal(seg.Data, segs[i].Data) {
			t.Fatalf("segment %d bytes differ after demotion", seg.ID)
		}
	}
	if rep.DegradedSubReads == 0 {
		t.Fatal("demoted column should force degraded sub-reads")
	}
}

func TestFailNodesValidation(t *testing.T) {
	s, err := Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailNodes(-1); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := s.FailNodes(999); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestStatsAndObjects(t *testing.T) {
	segs := makeSegments(t, 8, 4, 7)
	s := openWith(t, segs)
	if err := s.Put("second", makeSegments(t, 4, 2, 8)); err != nil {
		t.Fatal(err)
	}
	objs := s.Objects()
	if len(objs) != 2 || objs[0] != "second" || objs[1] != "video" {
		t.Fatalf("objects %v", objs)
	}
	st := s.Stats()
	if st.Objects != 2 || st.Nodes != s.Code().TotalShards() || st.FailedNodes != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.StoredBytes == 0 {
		t.Fatal("no stored bytes")
	}
	if err := s.FailNodes(0); err != nil {
		t.Fatal(err)
	}
	if s.Stats().FailedNodes != 1 {
		t.Fatal("failed node not counted")
	}
}

func TestConcurrentReadersAndRepair(t *testing.T) {
	segs := makeSegments(t, 40, 8, 9)
	s := openWith(t, segs)
	dn := s.Code().DataNodeIndexes()
	if err := s.FailNodes(dn[0]); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, _, err := s.Get("video"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.RepairAll(); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	got, rep, err := s.Get("video")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("post-repair get: %v %v", err, rep)
	}
	checkSegments(t, got, segs, nil)
}

func TestMultiStripeObjects(t *testing.T) {
	// Enough data to span several global stripes.
	cfg := testConfig()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	var segs []Segment
	for i := 0; i < 200; i++ {
		data := make([]byte, 300+rng.Intn(200))
		rng.Read(data)
		segs = append(segs, Segment{ID: i, Important: i%8 == 0, Data: data})
	}
	if err := s.Put("big", segs); err != nil {
		t.Fatal(err)
	}
	got, rep, err := s.Get("big")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("get: %v %+v", err, rep)
	}
	checkSegments(t, got, segs, nil)
	scrub, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if scrub.StripesChecked < 2 {
		t.Fatalf("expected multiple stripes, checked %d", scrub.StripesChecked)
	}
}

func TestPutWhileNodeFailedThenRepair(t *testing.T) {
	segs := makeSegments(t, 16, 4, 11)
	s, err := Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dn := s.Code().DataNodeIndexes()
	if err := s.FailNodes(dn[2]); err != nil {
		t.Fatal(err)
	}
	// Writing into a degraded stripe set: the failed node's column is
	// simply not stored.
	if err := s.Put("video", segs); err != nil {
		t.Fatal(err)
	}
	got, rep, err := s.Get("video")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("degraded write unreadable: %v %+v", err, rep)
	}
	checkSegments(t, got, segs, nil)
	if _, err := s.RepairAll(); err != nil {
		t.Fatal(err)
	}
	scrub, err := s.Scrub()
	if err != nil || len(scrub.Corrupt) != 0 {
		t.Fatalf("scrub after degraded-write repair: %v %+v", err, scrub)
	}
}

func ExampleStore() {
	s, err := Open(Config{
		Code: core.Params{
			Family: core.FamilyRS, K: 3, R: 1, G: 2, H: 3, Structure: core.Uneven,
		},
		NodeSize: 3 * 256,
	})
	if err != nil {
		panic(err)
	}
	_ = s.Put("clip", []Segment{
		{ID: 0, Important: true, Data: []byte("i-frame")},
		{ID: 1, Important: false, Data: []byte("p-frame")},
	})
	seg, _ := s.GetSegment("clip", 0)
	fmt.Println(string(seg.Data))
	// Output: i-frame
}

func TestScrubCleanAfterLossyRepair(t *testing.T) {
	// After a repair that abandons unimportant data, parity must be
	// re-encoded so the stripe verifies clean and surviving segments
	// still read back byte-exactly.
	segs := makeSegments(t, 24, 6, 12)
	s := openWith(t, segs)
	dn := s.Code().DataNodeIndexes()
	if err := s.FailNodes(dn[3], dn[4]); err != nil { // stripe 1, r=1 exceeded
		t.Fatal(err)
	}
	rep, err := s.RepairAll()
	if err != nil {
		t.Fatal(err)
	}
	lost := make(map[int]bool)
	for _, id := range rep.LostSegments["video"] {
		lost[id] = true
	}
	if len(lost) == 0 {
		t.Fatal("expected losses")
	}
	scrub, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(scrub.Corrupt) != 0 {
		t.Fatalf("stripe inconsistent after lossy repair: %v", scrub.Corrupt)
	}
	got, gRep, err := s.Get("video")
	if err != nil || len(gRep.LostSegments) != 0 {
		t.Fatalf("get after repair: %v %+v", err, gRep)
	}
	checkSegments(t, got, segs, lost)
	// A later failure must still be repairable from the re-encoded
	// parity (redundancy was actually restored).
	if err := s.FailNodes(dn[5]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RepairAll(); err != nil {
		t.Fatal(err)
	}
	got, gRep, err = s.Get("video")
	if err != nil || len(gRep.LostSegments) != 0 {
		t.Fatalf("get after second repair: %v %+v", err, gRep)
	}
	checkSegments(t, got, segs, lost)
}

func TestInterleavedPlacementScattersLoss(t *testing.T) {
	// With default interleaving, a failed node loses non-adjacent
	// segments; with contiguous placement it loses runs. Compare the
	// longest run of consecutive lost segment IDs.
	longestRun := func(contiguous bool) int {
		cfg := testConfig()
		cfg.ContiguousPlacement = contiguous
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		segs := makeSegments(t, 120, 10, 13)
		if err := s.Put("video", segs); err != nil {
			t.Fatal(err)
		}
		dn := s.Code().DataNodeIndexes()
		if err := s.FailNodes(dn[3], dn[4]); err != nil {
			t.Fatal(err)
		}
		_, rep, err := s.Get("video")
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.LostSegments) == 0 {
			t.Fatal("expected losses")
		}
		run, best := 1, 1
		for i := 1; i < len(rep.LostSegments); i++ {
			if rep.LostSegments[i] == rep.LostSegments[i-1]+1 {
				run++
			} else {
				run = 1
			}
			if run > best {
				best = run
			}
		}
		return best
	}
	inter := longestRun(false)
	contig := longestRun(true)
	if inter >= contig {
		t.Fatalf("interleaving run %d not shorter than contiguous %d", inter, contig)
	}
}

func TestPlacementCoversAllBytesBothStrategies(t *testing.T) {
	for _, contiguous := range []bool{false, true} {
		cfg := testConfig()
		cfg.ContiguousPlacement = contiguous
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		segs := makeSegments(t, 60, 7, 14)
		if err := s.Put("video", segs); err != nil {
			t.Fatal(err)
		}
		got, rep, err := s.Get("video")
		if err != nil || len(rep.LostSegments) != 0 {
			t.Fatalf("contiguous=%v: %v %+v", contiguous, err, rep)
		}
		checkSegments(t, got, segs, nil)
	}
}

// TestFailNodesRacesScrubAndRepair is the regression test for crash
// failures landing mid-scrub and mid-repair: a goroutine repeatedly
// wipes node 1 (one node — well within tolerance, so every stripe stays
// recoverable no matter when the wipe lands) while Scrub and RepairAll
// loop concurrently. Run under -race. Nothing may panic, no call may
// error, and every scrub report must account for each stripe exactly
// once (checked, skipped, or corrupt — never double-counted).
func TestFailNodesRacesScrubAndRepair(t *testing.T) {
	segs := makeSegments(t, 24, 4, 31)
	s := openWith(t, segs)

	base, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	total := base.StripesChecked
	if total == 0 {
		t.Fatal("no stripes to scrub")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.FailNodes(1); err != nil {
				t.Errorf("FailNodes: %v", err)
				return
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()

	for i := 0; i < 30; i++ {
		rep, err := s.Scrub()
		if err != nil {
			t.Fatalf("scrub %d: %v", i, err)
		}
		if rep.StripesChecked+rep.StripesSkipped > total {
			t.Fatalf("scrub %d double-counted stripes: %+v (total %d)", i, rep, total)
		}
		if rep.StripesChecked+rep.StripesSkipped+len(rep.Corrupt) < total {
			t.Fatalf("scrub %d lost stripes: %+v (total %d)", i, rep, total)
		}
		for j := 1; j < len(rep.Corrupt); j++ {
			if rep.Corrupt[j] == rep.Corrupt[j-1] {
				t.Fatalf("scrub %d duplicate corrupt entry %q", i, rep.Corrupt[j])
			}
		}
		if _, err := s.RepairAll(); err != nil {
			t.Fatalf("repair %d: %v", i, err)
		}
	}

	close(stop)
	wg.Wait()

	// Settle: one final crash + repair, then every byte must be exact.
	if err := s.FailNodes(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RepairAll(); err != nil {
		t.Fatal(err)
	}
	if fn := s.FailedNodes(); len(fn) != 0 {
		t.Fatalf("nodes still failed after settle repair: %v", fn)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.StripesChecked != total || len(rep.Corrupt) != 0 {
		t.Fatalf("settle scrub not clean: %+v", rep)
	}
	got, gr, err := s.Get("video")
	if err != nil || len(gr.LostSegments) != 0 {
		t.Fatalf("settle get: %v %+v", err, gr)
	}
	checkSegments(t, got, segs, nil)
}
