package store

import (
	"fmt"
	"sort"

	"approxcode/internal/core"
	"approxcode/internal/obs"
	"approxcode/internal/tier"
)

// UpdateSegment overwrites a stored segment's bytes in place (same
// length) using the framework's incremental parity update — the
// single-write path of the paper's Table 2. Affected columns are
// updated copy-on-write and swapped in atomically per node, so
// concurrent readers always observe a consistent stripe (either the old
// or the new version).
//
// Updates require a fully healthy stripe set; repair first if nodes are
// failed.
//
// On a durable store the update (name, segment, new bytes) is journaled
// and synced before the first column write, so an acknowledged update
// survives a crash mid-swap: recovery replays it and re-derives the
// same incremental parity update.
func (s *Store) UpdateSegment(name string, id int, newData []byte) error {
	if err := s.admit.acquire("UpdateSegment"); err != nil {
		return err
	}
	defer s.admit.release()
	defer s.metrics.opUpdate.Start().Stop()
	sp := s.metrics.reg.StartSpan("store.UpdateSegment")
	defer func() { sp.End(obs.A("object", name), obs.A("segment", id)) }()
	s.quiesce.RLock()
	defer s.quiesce.RUnlock()
	s.crash("update.before-journal")
	if err := s.journalAppend(recUpdate, updateRecord{Name: name, ID: id, Data: newData}); err != nil {
		return err
	}
	s.crash("update.after-journal")
	return s.applyUpdate(name, id, newData)
}

// applyUpdate performs the update (also the journal replay path). A
// replayed update that fails — e.g. against nodes that failed later in
// the journal — reproduces the original call's outcome, including any
// partial stripe writes it had completed.
func (s *Store) applyUpdate(name string, id int, newData []byte) error {
	obj, ok := s.objects.get(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	// Hold the fail-set read lock across the healthy-stripe check AND
	// the copy-on-write swap: a concurrent FailNodes would otherwise
	// race the pre-check (TOCTOU) and wipe nodes mid-swap, leaving a
	// stripe that mixes pre- and post-update columns.
	s.failMu.RLock()
	defer s.failMu.RUnlock()
	// The update lock spans every column write and checksum publication
	// of this update, so scrub's read-repair (which re-checks under the
	// same lock) can never mistake a half-published update for
	// corruption and heal it backwards.
	obj.updateMu.Lock()
	defer obj.updateMu.Unlock()
	if len(s.FailedNodes()) > 0 {
		return fmt.Errorf("%w: cannot update with failed nodes (repair first)", ErrUnavailable)
	}
	// Bump the data epoch on entry AND exit: cached decoded segments
	// keyed by the pre-update epoch stop serving the moment bytes may
	// start moving, and a read racing the update can only insert under
	// an epoch this second bump retires (see segKey).
	obj.version.Add(1)
	defer obj.version.Add(1)
	var extents []extent
	total := 0
	for _, e := range obj.extents {
		if e.seg == id {
			extents = append(extents, e)
			total += e.length
		}
	}
	if len(extents) == 0 {
		return fmt.Errorf("%w: segment %d", ErrNotFound, id)
	}
	if len(newData) != total {
		return fmt.Errorf("store: segment %d is %d bytes, got %d (resizing unsupported)",
			id, total, len(newData))
	}
	// Group extents by stripe, preserving stream order within each.
	byStripe := make(map[int][]extent)
	var stripes []int
	for _, e := range extents {
		if _, ok := byStripe[e.stripe]; !ok {
			stripes = append(stripes, e.stripe)
		}
		byStripe[e.stripe] = append(byStripe[e.stripe], e)
	}
	sort.Ints(stripes)
	sub := s.cfg.NodeSize / s.cfg.Code.H

	// The extent list is in placement order; map each extent to its
	// byte range within newData.
	cursor := 0
	offsetOf := make(map[[4]int]int) // (stripe,node,row,off) -> newData offset
	for _, e := range extents {
		offsetOf[[4]int{e.stripe, e.node, e.row, e.off}] = cursor
		cursor += e.length
	}

	for _, st := range stripes {
		// Read through the CRC-verifying path: a column whose bytes fail
		// the stored checksum (torn disk write, wire bit-flip on a
		// networked backend) must never feed code.Update — the poisoned
		// parity deltas would be written back and re-checksummed as
		// truth, making the corruption permanent and undetectable.
		cols, _ := s.readStripe(obj, st)
		var erased []int
		for i, c := range cols {
			if c == nil {
				erased = append(erased, i)
			}
		}
		if len(erased) > 0 {
			// Rebuild demoted/unreadable columns from the survivors so
			// the incremental update runs against true bytes; if the
			// stripe cannot be fully reconstructed the update fails
			// rather than guessing.
			r, err := s.reconstructForHeal(cols, erased)
			if err != nil || len(r.Lost) > 0 {
				return fmt.Errorf("%w: stripe %d columns %v unreadable or corrupt",
					ErrUnavailable, st, erased)
			}
		}
		// Copy-on-write: clone every column the update may mutate (the
		// touched data nodes and every parity node).
		mutated := make(map[int]bool)
		for _, e := range byStripe[st] {
			mutated[e.node] = true
		}
		for i := range cols {
			if s.code.Role(i) != core.RoleData {
				mutated[i] = true
			}
		}
		for i := range cols {
			if mutated[i] {
				cols[i] = append([]byte(nil), cols[i]...)
			}
		}
		// Apply per (node, row) sub-block: patch the changed byte ranges
		// and run the incremental update.
		type key struct{ node, row int }
		patches := make(map[key][]extent)
		var order []key
		for _, e := range byStripe[st] {
			k := key{e.node, e.row}
			if _, ok := patches[k]; !ok {
				order = append(order, k)
			}
			patches[k] = append(patches[k], e)
		}
		for _, k := range order {
			old := cols[k.node][k.row*sub : (k.row+1)*sub]
			blk := append([]byte(nil), old...)
			for _, e := range patches[k] {
				off := offsetOf[[4]int{e.stripe, e.node, e.row, e.off}]
				copy(blk[e.off:e.off+e.length], newData[off:off+e.length])
			}
			if _, err := s.code.Update(cols, k.node, k.row, blk); err != nil {
				return fmt.Errorf("store update: %w", err)
			}
		}
		// Swap the mutated clones in through the I/O stack and publish
		// their new checksums (whole-column and per-sub-block).
		sums := make(map[int]uint32)
		subSums := make(map[int][]uint32)
		for i := range cols {
			if !mutated[i] {
				continue
			}
			if s.tierDropsColumn(obj, i) {
				// A cold object stores no global parity; the update ran
				// against a reconstructed copy, but persisting it would
				// silently resurrect the redundancy the demotion removed.
				continue
			}
			if err := s.writeColumn(i, name, st, cols[i]); err != nil {
				return fmt.Errorf("store update: write node %d: %w", i, err)
			}
			sums[i] = colSum(cols[i])
			subSums[i] = subColSums(cols[i], s.cfg.Code.H)
		}
		obj.setSums(st, len(s.nodes), sums)
		obj.setSubSums(st, len(s.nodes), subSums)
		// Hot objects keep their data-column replicas fresh in the same
		// critical section. Best-effort: a failed replica write degrades
		// replica reads (which verify by checksum and fall back to the
		// decode path), never correctness.
		if obj.tierLevel() == tier.Hot {
			for i := range cols {
				if mutated[i] && s.code.Role(i) == core.RoleData {
					_ = s.writeColumn(s.repNode(i), repKey(name), st, cols[i])
				}
			}
		}
		s.crash("update.mid-write")
	}
	return nil
}
