package store

import (
	"errors"

	"approxcode/internal/chaos"
	"approxcode/internal/core"
)

// Typed error taxonomy of the storage layer. Everything the store
// returns wraps one of these sentinels, so callers dispatch with
// errors.Is instead of string matching. ErrNodeUnavailable and
// ErrUnrecoverable are aliases of the chaos and core sentinels, so a
// single errors.Is check works across the whole stack.
var (
	// ErrExists: the object name is already stored.
	ErrExists = errors.New("store: object already exists")
	// ErrNotFound: no such object or segment.
	ErrNotFound = errors.New("store: object not found")
	// ErrUnavailable: the requested data cannot currently be produced
	// (too many failures for the code to decode around).
	ErrUnavailable = errors.New("store: data unavailable")
	// ErrCorrupted: stored bytes failed an integrity check (checksum
	// mismatch, truncated column, or damaged persistence file).
	ErrCorrupted = errors.New("store: data corrupted")
	// ErrTimeout: a node operation exceeded its deadline.
	ErrTimeout = errors.New("store: operation timed out")
	// ErrInvalid: the caller passed an invalid argument.
	ErrInvalid = errors.New("store: invalid argument")
	// ErrRepairActive: a repair run is already in progress; wait for it
	// (or abort it) before starting another.
	ErrRepairActive = errors.New("store: repair already active")
	// ErrOverloaded: admission control rejected the operation because
	// the store is at its configured in-flight limit (Config.MaxInFlight)
	// and no slot freed within the admit-wait budget. The request was
	// not started; callers may retry with backoff.
	ErrOverloaded = errors.New("store: overloaded")
	// ErrPlacementUnsafe: the store was opened with an explicit
	// multi-domain topology that violates the survival invariants
	// (place.Report.Err), so new writes would not survive the domain
	// losses the topology claims to protect against. Put refuses until
	// the layout is fixed (or Config.AllowUnsafePlacement opts in for
	// measured baselines). Legacy/implicit flat topologies are exempt:
	// their exposure is reported by Scrub, never enforced.
	ErrPlacementUnsafe = errors.New("store: placement violates survival invariants")
	// ErrNodeUnavailable: I/O against a crashed or health-failed node.
	// Alias of chaos.ErrNodeUnavailable.
	ErrNodeUnavailable = chaos.ErrNodeUnavailable
	// ErrUnrecoverable: a codeword exceeded its fault tolerance; the
	// data is gone from the coding layer's point of view and must be
	// routed to the video recovery module. Alias of
	// core.ErrUnrecoverable.
	ErrUnrecoverable = core.ErrUnrecoverable
)

// errColumnMissing marks a column that was never stored on the node
// (e.g. a write skipped while the node was failed). It is not a node
// fault: reads treat it as a plain erasure without health penalties.
// Alias of chaos.ErrColumnMissing — the NodeIO contract's sentinel —
// so external backends (disk, network) report the condition the same
// way the built-in in-memory nodes do.
var errColumnMissing = chaos.ErrColumnMissing
