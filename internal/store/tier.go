package store

import (
	"fmt"
	"time"

	"approxcode/internal/core"
	"approxcode/internal/obs"
	"approxcode/internal/tier"
)

// This file is the store half of popularity-adaptive redundancy tiers
// (internal/tier holds the policy side: tracker, classifier, cache,
// manager). An object's tier changes only the redundancy AROUND its
// data columns — the data columns, extents, and placement never move:
//
//	Hot:  the warm layout plus a full replica of every data column,
//	      stored under a shadow object key on a distant node, so reads
//	      survive a primary-column loss without decoding. Hot objects
//	      are also eligible for the decoded-segment cache.
//	Warm: the baseline APPR layout (data + local parity + global
//	      parity) exactly as Put wrote it.
//	Cold: the warm layout minus the global parity columns — the
//	      (K+R)/K low-overhead code. Important data loses its extra
//	      global tolerance; the local parity still covers R failures
//	      per sub-stripe.
//
// A migration is crash-safe by the same WAL discipline as every other
// mutation: a begin record marks intent, the new redundancy is built
// while readers still follow the old tier, and the commit record is
// the durability point. The in-memory tier swaps atomically only after
// commit, so a concurrent reader observes entirely the old or entirely
// the new encoding — never a mix. Replay of a commit re-derives the
// redundancy from the data columns; a dangling begin (death mid-build)
// deletes the partial target redundancy and keeps the old tier.

// repSuffix extends an object's name into the shadow key its hot-tier
// replica columns are stored under. NUL cannot appear in user-facing
// names that matter here (the key never leaves node.columns), so the
// shadow namespace cannot collide with a real object.
const repSuffix = "\x00r"

func repKey(name string) string { return name + repSuffix }

// repNode places the replica of data column ni on a node roughly
// opposite it in the ring, so one node loss never takes a column and
// its replica together.
func (s *Store) repNode(ni int) int {
	shift := len(s.nodes) / 2
	if shift == 0 {
		shift = 1
	}
	return (ni + shift) % len(s.nodes)
}

func (o *object) tierLevel() tier.Level { return tier.Level(o.tier.Load()) }

func (o *object) setTier(l tier.Level) { o.tier.Store(int32(l)) }

// tierDropsColumn reports whether the object's current tier deletes
// node ni's column (cold objects carry no global parity). Write-back
// paths that re-derive parity (repair re-encode, update) consult it so
// they never resurrect redundancy a demotion removed.
func (s *Store) tierDropsColumn(obj *object, ni int) bool {
	return obj.tierLevel() == tier.Cold && s.code.Role(ni) == core.RoleGlobalParity
}

// ObjectTier reports the object's current redundancy tier. Together
// with MigrateObject it satisfies tier.Migrator, so a tier.Manager can
// drive the store directly.
func (s *Store) ObjectTier(name string) (tier.Level, bool) {
	obj, ok := s.objects.get(name)
	if !ok {
		return 0, false
	}
	return obj.tierLevel(), true
}

// MigrateObject re-encodes an object's redundancy for the target tier.
// It never blocks concurrent Get/GetSegment: readers run lock-free
// against the object descriptor and follow the old tier until the
// atomic swap at commit. It does serialize with UpdateSegment and
// scrub's read-repair on the object (updateMu) — both rewrite the
// columns a migration reads — and with FailNodes (failMu), whose wipe
// would invalidate the healthy-stripe requirement mid-build.
func (s *Store) MigrateObject(name string, to tier.Level) error {
	if !to.Valid() {
		return fmt.Errorf("%w: tier %d", ErrInvalid, int(to))
	}
	if s.extBackend {
		return fmt.Errorf("%w: tier migration requires the built-in node backend", ErrInvalid)
	}
	defer s.metrics.migrateSeconds.Start().Stop()
	sp := s.metrics.reg.StartSpan("store.MigrateObject")
	defer func() { sp.End(obs.A("object", name), obs.A("to", to.String())) }()
	s.quiesce.RLock()
	defer s.quiesce.RUnlock()
	obj, ok := s.objects.get(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	s.failMu.RLock()
	defer s.failMu.RUnlock()
	obj.updateMu.Lock()
	defer obj.updateMu.Unlock()
	from := obj.tierLevel()
	if from == to {
		return nil
	}
	if len(s.FailedNodes()) > 0 {
		return fmt.Errorf("%w: cannot migrate with failed nodes (repair first)", ErrUnavailable)
	}
	if err := s.journalAppend(recMigrateBegin, migrateRecord{Name: name, From: int(from), To: int(to)}); err != nil {
		return err
	}
	s.crash("migrate.after-begin")
	moved, err := s.buildTierRedundancy(obj, from, to)
	if err != nil {
		// The begin record dangles in the journal; recovery performs the
		// same cleanup, so crash-during-cleanup converges too.
		s.cleanupTierRedundancy(obj, from, to)
		return err
	}
	s.crash("migrate.before-commit")
	if err := s.journalAppend(recMigrateCommit, migrateRecord{Name: name, From: int(from), To: int(to)}); err != nil {
		s.cleanupTierRedundancy(obj, from, to)
		return err
	}
	// The commit point: swap the tier readers observe, then retire the
	// old tier's extra redundancy. The epoch bump unkeys any cached
	// decoded segments so post-migration reads re-derive them.
	obj.setTier(to)
	obj.version.Add(1)
	s.crash("migrate.after-commit")
	s.dropTierRedundancy(obj, from, to)
	if to.Rank() > from.Rank() {
		s.metrics.tierPromotions.Inc()
	} else {
		s.metrics.tierDemotions.Inc()
	}
	// One "µs" = one redundancy byte written (see metrics.go).
	s.metrics.migrateBytes.Observe(time.Duration(moved) * time.Microsecond)
	return nil
}

// healthyStripe assembles one fully reconstructed stripe: every column
// read and verified, erasures and demotes rebuilt from survivors. A
// stripe that cannot be made whole fails the migration — redundancy
// must be derived from true bytes, never guesses.
func (s *Store) healthyStripe(obj *object, st int) ([][]byte, error) {
	cols, _ := s.readStripe(obj, st)
	var erased []int
	for i, c := range cols {
		if c == nil {
			erased = append(erased, i)
		}
	}
	if len(erased) > 0 {
		r, err := s.reconstructForHeal(cols, erased)
		if err != nil {
			return nil, err
		}
		if len(r.Lost) > 0 {
			return nil, fmt.Errorf("%w: columns %v unrecoverable", ErrUnavailable, erased)
		}
	}
	return cols, nil
}

// buildTierRedundancy writes the redundancy the target tier adds over
// the source tier: global parity when leaving cold, data-column
// replicas when entering hot. It returns the bytes written. The
// object's published tier is untouched — readers keep following the
// old layout until the caller commits.
func (s *Store) buildTierRedundancy(obj *object, from, to tier.Level) (int64, error) {
	needGlobals := from == tier.Cold && to != tier.Cold
	needReplicas := to == tier.Hot
	if !needGlobals && !needReplicas {
		return 0, nil
	}
	var moved int64
	dataIdx := s.code.DataNodeIndexes()
	for st := 0; st < obj.stripes; st++ {
		cols, err := s.healthyStripe(obj, st)
		if err != nil {
			return moved, fmt.Errorf("store migrate %q: stripe %d: %w", obj.name, st, err)
		}
		if needGlobals {
			sums := make(map[int]uint32)
			subSums := make(map[int][]uint32)
			for ni := range cols {
				if s.code.Role(ni) != core.RoleGlobalParity {
					continue
				}
				if err := s.writeColumn(ni, obj.name, st, cols[ni]); err != nil {
					return moved, fmt.Errorf("store migrate %q: write node %d: %w", obj.name, ni, err)
				}
				moved += int64(len(cols[ni]))
				sums[ni] = colSum(cols[ni])
				subSums[ni] = subColSums(cols[ni], s.cfg.Code.H)
			}
			obj.setSums(st, len(s.nodes), sums)
			obj.setSubSums(st, len(s.nodes), subSums)
		}
		if needReplicas {
			for _, ni := range dataIdx {
				if err := s.writeColumn(s.repNode(ni), repKey(obj.name), st, cols[ni]); err != nil {
					return moved, fmt.Errorf("store migrate %q: replica of node %d: %w", obj.name, ni, err)
				}
				moved += int64(len(cols[ni]))
			}
		}
	}
	return moved, nil
}

// dropTierRedundancy deletes the redundancy the committed target tier
// no longer carries: replicas when leaving hot, global parity when
// entering cold. Deletion failures are tolerable — an orphaned column
// costs space, never correctness — so errors are discarded.
func (s *Store) dropTierRedundancy(obj *object, from, to tier.Level) {
	if from == tier.Hot && to != tier.Hot {
		s.deleteReplicaColumns(obj)
	}
	if to == tier.Cold {
		s.deleteGlobalColumns(obj)
	}
}

// cleanupTierRedundancy undoes a failed or dangling (crashed mid-build)
// migration: whatever buildTierRedundancy may have written toward the
// target tier is deleted, restoring a clean source-tier layout.
func (s *Store) cleanupTierRedundancy(obj *object, from, to tier.Level) {
	if to == tier.Hot && from != tier.Hot {
		s.deleteReplicaColumns(obj)
	}
	if from == tier.Cold && to != tier.Cold {
		s.deleteGlobalColumns(obj)
	}
}

// deleteReplicaColumns removes the object's hot-tier replica set (a nil
// write deletes: see memIO.ReadColumn's missing-column rule).
func (s *Store) deleteReplicaColumns(obj *object) {
	rep := repKey(obj.name)
	for st := 0; st < obj.stripes; st++ {
		for _, ni := range s.code.DataNodeIndexes() {
			_ = s.writeColumn(s.repNode(ni), rep, st, nil)
		}
	}
}

// deleteGlobalColumns removes the object's global parity columns (the
// cold tier's storage saving).
func (s *Store) deleteGlobalColumns(obj *object) {
	for st := 0; st < obj.stripes; st++ {
		for ni := range s.nodes {
			if s.code.Role(ni) == core.RoleGlobalParity {
				_ = s.writeColumn(ni, obj.name, st, nil)
			}
		}
	}
}

// applyMigrate replays a committed migration. Replay must converge,
// not abort: the commit record is the acknowledged durability point,
// so the object always lands on the target tier — a partial rebuild
// (e.g. against nodes that failed later in the journal) leaves the
// redundancy thin until repair or an update refreshes it, and reads
// fall back to decoding from the data columns regardless.
func (s *Store) applyMigrate(mr migrateRecord) bool {
	obj, ok := s.objects.get(mr.Name)
	if !ok {
		return false
	}
	from, to := tier.Level(mr.From), tier.Level(mr.To)
	obj.updateMu.Lock()
	defer obj.updateMu.Unlock()
	_, _ = s.buildTierRedundancy(obj, from, to) // best-effort: see above
	obj.setTier(to)
	obj.version.Add(1)
	s.dropTierRedundancy(obj, from, to)
	return true
}

// replicaSubBlock serves a sub-block from a hot object's replica column
// after the primary read failed or was demoted, verified against the
// same published sub-checksum (the replica is a byte copy of the
// primary column). ok=false sends the caller down the normal
// escalation ladder.
func (s *Store) replicaSubBlock(obj *object, stripe int, sb core.SubBlock, sub int, want uint32) ([]byte, bool) {
	if obj.tierLevel() != tier.Hot || s.code.Role(sb.Node) != core.RoleData {
		return nil, false
	}
	b, err := s.readColumnAt(s.repNode(sb.Node), repKey(obj.name), stripe, sb.Row*sub, sub)
	if err != nil || len(b) != sub {
		return nil, false
	}
	if want != 0 && colSum(b) != want {
		return nil, false
	}
	return b, true
}

// segKey keys one decoded segment in the read cache. Embedding the
// object's data epoch makes invalidation free: every bytes-changing
// path bumps object.version, so entries cached against the old epoch
// become unreachable and age out of the LRU.
func segKey(name string, id int, epoch int64) string {
	return fmt.Sprintf("%s\x00%d\x00%d", name, id, epoch)
}

// cacheGet serves a GetSegment from the decoded-segment cache. Only
// hot-tier objects are cached. The returned epoch (valid even on a
// miss) keys the caller's later insert, so a result read concurrently
// with an update can only land under the superseded epoch.
func (s *Store) cacheGet(name string, id int) (Segment, int64, bool) {
	if s.cache == nil {
		return Segment{}, -1, false
	}
	obj, ok := s.objects.get(name)
	if !ok {
		return Segment{}, -1, false
	}
	epoch := obj.version.Load()
	if obj.tierLevel() != tier.Hot {
		return Segment{}, epoch, false
	}
	data, ok := s.cache.Get(segKey(name, id, epoch))
	if !ok {
		return Segment{}, epoch, false
	}
	for _, m := range obj.segments {
		if m.ID == id {
			return Segment{ID: id, Important: m.Important, Data: data}, epoch, true
		}
	}
	return Segment{}, epoch, false
}

// cachePut inserts a decoded segment under the epoch captured before
// the read. The cache copies the payload in, so the store never aliases
// a cached buffer to one the caller (or the column pool) may mutate.
func (s *Store) cachePut(name string, id int, epoch int64, seg Segment) {
	if s.cache == nil || epoch < 0 || len(seg.Data) == 0 {
		return
	}
	obj, ok := s.objects.get(name)
	if !ok || obj.tierLevel() != tier.Hot {
		return
	}
	s.cache.Put(segKey(name, id, epoch), seg.Data)
}
