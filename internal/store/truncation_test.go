package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"approxcode/internal/core"
)

// The satellite truncation sweeps: persisted state cut off at every
// byte offset must either fail the load with ErrCorrupted (strict) or
// demote cleanly (lenient) — never panic, never load silently wrong
// bytes.

// tinyConfig shrinks NodeSize to the code's granularity so the node
// files are small enough to sweep byte-by-byte.
func tinyConfig(t *testing.T) Config {
	t.Helper()
	cfg := testConfig()
	code, err := core.New(cfg.Code)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NodeSize = code.ShardSizeMultiple()
	return cfg
}

func tinySegments() []Segment {
	return []Segment{
		{ID: 0, Important: true, Data: []byte{1, 2, 3}},
		{ID: 1, Important: false, Data: []byte{4, 5, 6, 7}},
		{ID: 2, Important: false, Data: []byte{8, 9}},
	}
}

// savedTinyStore saves a tiny store and returns its directory and the
// original segments.
func savedTinyStore(t *testing.T) (string, []Segment) {
	t.Helper()
	dir := t.TempDir()
	segs := tinySegments()
	s, err := Open(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("video", segs); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	return dir, segs
}

func TestTruncationSweepNodeFile(t *testing.T) {
	dir, segs := savedTinyStore(t)
	probe, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := probe.Code().DataNodeIndexes()[0]
	path := currentNodePath(t, dir, victim)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(full); off++ {
		if err := os.WriteFile(path, full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir); !errors.Is(err, ErrCorrupted) {
			t.Fatalf("offset %d: strict load got %v, want ErrCorrupted", off, err)
		}
		loaded, err := LoadWith(dir, LoadOptions{Lenient: true})
		if err != nil {
			t.Fatalf("offset %d: lenient load: %v", off, err)
		}
		if fn := loaded.FailedNodes(); len(fn) != 1 || fn[0] != victim {
			t.Fatalf("offset %d: failed nodes %v, want [%d]", off, fn, victim)
		}
		got, rep, err := loaded.Get("video")
		if err != nil || len(rep.LostSegments) != 0 {
			t.Fatalf("offset %d: degraded get: %v %+v", off, err, rep)
		}
		checkSegments(t, got, segs, nil)
	}
	// Restore and confirm the sweep left the directory loadable.
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err != nil {
		t.Fatalf("restored file no longer loads: %v", err)
	}
}

func TestTruncationSweepManifest(t *testing.T) {
	dir, _ := savedTinyStore(t)
	path := currentManifestPath(t, dir)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(full); off++ {
		if err := os.WriteFile(path, full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		// Manifest corruption is fatal in both modes: without it nothing
		// can be interpreted.
		if _, err := Load(dir); !errors.Is(err, ErrCorrupted) {
			t.Fatalf("offset %d: strict load got %v, want ErrCorrupted", off, err)
		}
		if _, err := LoadWith(dir, LoadOptions{Lenient: true}); !errors.Is(err, ErrCorrupted) {
			t.Fatalf("offset %d: lenient load got %v, want ErrCorrupted", off, err)
		}
	}
}

func TestTruncationSweepJournal(t *testing.T) {
	dir := t.TempDir()
	segs := tinySegments()
	s, _, err := OpenDurable(dir, tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// The put lives only in the journal (the initial snapshot generation
	// predates it), so replay decides whether "video" is visible.
	if err := s.Put("video", segs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, journalFile)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(full); off++ {
		if err := os.WriteFile(path, full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		if off < len(journalMagic) {
			// A headerless journal cannot be trusted: strict loads refuse,
			// lenient loads fall back to the snapshot alone.
			if _, err := Load(dir); !errors.Is(err, ErrCorrupted) {
				t.Fatalf("offset %d: strict load got %v, want ErrCorrupted", off, err)
			}
			loaded, err := LoadWith(dir, LoadOptions{Lenient: true})
			if err != nil {
				t.Fatalf("offset %d: lenient load: %v", off, err)
			}
			if len(loaded.Objects()) != 0 {
				t.Fatalf("offset %d: headerless journal still produced objects", off)
			}
			continue
		}
		// Past the header every truncation is a torn tail: the valid
		// prefix replays and the object is either fully visible or fully
		// absent — never partially applied.
		loaded, err := Load(dir)
		if err != nil {
			t.Fatalf("offset %d: strict load: %v", off, err)
		}
		if names := loaded.Objects(); len(names) == 1 {
			got, rep, err := loaded.Get("video")
			if err != nil || len(rep.LostSegments) != 0 {
				t.Fatalf("offset %d: get: %v %+v", off, err, rep)
			}
			checkSegments(t, got, segs, nil)
		} else if len(names) != 0 {
			t.Fatalf("offset %d: unexpected objects %v", off, names)
		}
	}
	// The full journal replays the whole put.
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := loaded.Get("video")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("get after restore: %v %+v", err, rep)
	}
	checkSegments(t, got, segs, nil)
}
