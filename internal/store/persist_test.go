package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// currentManifestPath / currentNodePath resolve the live generation's
// file names (the layout is generation-numbered since the journal).
func currentManifestPath(t *testing.T, dir string) string {
	t.Helper()
	gen, ok := currentGeneration(dir)
	if !ok {
		t.Fatalf("no live generation in %s", dir)
	}
	return manifestFileAt(dir, gen)
}

func currentNodePath(t *testing.T, dir string, i int) string {
	t.Helper()
	gen, ok := currentGeneration(dir)
	if !ok {
		t.Fatalf("no live generation in %s", dir)
	}
	return nodeFileAt(dir, i, gen)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	segs := makeSegments(t, 30, 6, 21)
	s := openWith(t, segs)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Objects(); len(got) != 1 || got[0] != "video" {
		t.Fatalf("objects %v", got)
	}
	segs2, rep, err := loaded.Get("video")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("get after load: %v %+v", err, rep)
	}
	checkSegments(t, segs2, segs, nil)
	scrub, err := loaded.Scrub()
	if err != nil || len(scrub.Corrupt) != 0 {
		t.Fatalf("scrub after load: %v %+v", err, scrub)
	}
}

func TestLoadTreatsMissingNodeFileAsFailure(t *testing.T) {
	dir := t.TempDir()
	segs := makeSegments(t, 30, 6, 22)
	s := openWith(t, segs)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Delete one node file: a crashed disk.
	victim := s.Code().DataNodeIndexes()[1]
	if err := os.Remove(currentNodePath(t, dir, victim)); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	failedNodes := loaded.FailedNodes()
	if len(failedNodes) != 1 || failedNodes[0] != victim {
		t.Fatalf("failed nodes %v, want [%d]", failedNodes, victim)
	}
	// Degraded reads still serve everything (single failure <= r+g).
	got, rep, err := loaded.Get("video")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("degraded get: %v %+v", err, rep)
	}
	checkSegments(t, got, segs, nil)
	// Repair and re-save: the store is whole again.
	if _, err := loaded.RepairAll(); err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := loaded.Save(dir2); err != nil {
		t.Fatal(err)
	}
	again, err := Load(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.FailedNodes()) != 0 {
		t.Fatal("repaired store reloaded with failures")
	}
}

func TestLoadCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, legacyManifestFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestSaveLoadPreservesFailureState(t *testing.T) {
	dir := t.TempDir()
	segs := makeSegments(t, 12, 4, 23)
	s := openWith(t, segs)
	victim := s.Code().DataNodeIndexes()[0]
	if err := s.FailNodes(victim); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	failedNodes := loaded.FailedNodes()
	if len(failedNodes) != 1 || failedNodes[0] != victim {
		t.Fatalf("failure state lost: %v", failedNodes)
	}
}

func corruptFile(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsTruncatedNodeFile(t *testing.T) {
	dir := t.TempDir()
	segs := makeSegments(t, 20, 5, 24)
	s := openWith(t, segs)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	victim := s.Code().DataNodeIndexes()[0]
	corruptFile(t, currentNodePath(t, dir, victim), func(b []byte) []byte { return b[:len(b)/2] })
	if _, err := Load(dir); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("truncated node file: got %v, want ErrCorrupted", err)
	}
	// Lenient mode demotes the damaged node to a failure and the store
	// serves exact bytes around it.
	loaded, err := LoadWith(dir, LoadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if fn := loaded.FailedNodes(); len(fn) != 1 || fn[0] != victim {
		t.Fatalf("failed nodes %v, want [%d]", fn, victim)
	}
	got, rep, err := loaded.Get("video")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("degraded get: %v %+v", err, rep)
	}
	checkSegments(t, got, segs, nil)
}

func TestLoadRejectsBitFlippedNodeFile(t *testing.T) {
	dir := t.TempDir()
	segs := makeSegments(t, 20, 5, 25)
	s := openWith(t, segs)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	victim := s.Code().DataNodeIndexes()[2]
	// Flip a byte deep inside the gob payload: without the envelope
	// checksum this could decode into silently wrong column bytes.
	corruptFile(t, currentNodePath(t, dir, victim), func(b []byte) []byte {
		b[len(b)/2] ^= 0x01
		return b
	})
	if _, err := Load(dir); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("bit-flipped node file: got %v, want ErrCorrupted", err)
	}
	loaded, err := LoadWith(dir, LoadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.RepairAll(); err != nil {
		t.Fatal(err)
	}
	got, rep, err := loaded.Get("video")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("get after repair: %v %+v", err, rep)
	}
	checkSegments(t, got, segs, nil)
}

func TestLoadRejectsTruncatedManifest(t *testing.T) {
	dir := t.TempDir()
	segs := makeSegments(t, 12, 4, 26)
	s := openWith(t, segs)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, currentManifestPath(t, dir), func(b []byte) []byte { return b[:len(b)-7] })
	if _, err := Load(dir); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("truncated manifest: got %v, want ErrCorrupted", err)
	}
	// Manifest corruption is fatal even leniently: without it nothing
	// can be interpreted.
	if _, err := LoadWith(dir, LoadOptions{Lenient: true}); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("lenient truncated manifest: got %v, want ErrCorrupted", err)
	}
}

func TestSaveLoadRoundTripPreservesChecksums(t *testing.T) {
	dir := t.TempDir()
	segs := makeSegments(t, 16, 4, 27)
	s := openWith(t, segs)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded store still detects (and heals) in-place corruption,
	// proving the column checksums travelled through the manifest.
	if err := loaded.CorruptByte("video", 0, loaded.Code().DataNodeIndexes()[0], 5); err != nil {
		t.Fatal(err)
	}
	rep, err := loaded.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumFailures != 1 || rep.Healed != 1 {
		t.Fatalf("reloaded store missed corruption: %+v", rep)
	}
}
