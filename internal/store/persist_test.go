package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	segs := makeSegments(t, 30, 6, 21)
	s := openWith(t, segs)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Objects(); len(got) != 1 || got[0] != "video" {
		t.Fatalf("objects %v", got)
	}
	segs2, rep, err := loaded.Get("video")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("get after load: %v %+v", err, rep)
	}
	checkSegments(t, segs2, segs, nil)
	scrub, err := loaded.Scrub()
	if err != nil || len(scrub.Corrupt) != 0 {
		t.Fatalf("scrub after load: %v %+v", err, scrub)
	}
}

func TestLoadTreatsMissingNodeFileAsFailure(t *testing.T) {
	dir := t.TempDir()
	segs := makeSegments(t, 30, 6, 22)
	s := openWith(t, segs)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Delete one node file: a crashed disk.
	victim := s.Code().DataNodeIndexes()[1]
	if err := os.Remove(nodeFile(dir, victim)); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	failedNodes := loaded.FailedNodes()
	if len(failedNodes) != 1 || failedNodes[0] != victim {
		t.Fatalf("failed nodes %v, want [%d]", failedNodes, victim)
	}
	// Degraded reads still serve everything (single failure <= r+g).
	got, rep, err := loaded.Get("video")
	if err != nil || len(rep.LostSegments) != 0 {
		t.Fatalf("degraded get: %v %+v", err, rep)
	}
	checkSegments(t, got, segs, nil)
	// Repair and re-save: the store is whole again.
	if _, err := loaded.RepairAll(); err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := loaded.Save(dir2); err != nil {
		t.Fatal(err)
	}
	again, err := Load(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.FailedNodes()) != 0 {
		t.Fatal("repaired store reloaded with failures")
	}
}

func TestLoadCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestSaveLoadPreservesFailureState(t *testing.T) {
	dir := t.TempDir()
	segs := makeSegments(t, 12, 4, 23)
	s := openWith(t, segs)
	victim := s.Code().DataNodeIndexes()[0]
	if err := s.FailNodes(victim); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	failedNodes := loaded.FailedNodes()
	if len(failedNodes) != 1 || failedNodes[0] != victim {
		t.Fatalf("failure state lost: %v", failedNodes)
	}
}
