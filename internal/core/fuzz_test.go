package core

import (
	"bytes"
	"testing"

	"approxcode/internal/erasure"
)

// FuzzCoreRoundTrip generates an Approximate Code from fuzzer-chosen
// parameters, encodes a fuzzer-chosen payload, erases up to the
// whole-stripe tolerance r, and demands byte-exact recovery with a clean
// report.
func FuzzCoreRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(2), uint8(1), uint8(2), false, uint8(0b11), []byte("approximate code"))
	f.Add(uint8(1), uint8(4), uint8(1), uint8(2), uint8(3), true, uint8(0b101), []byte("tiered video storage"))
	f.Add(uint8(2), uint8(3), uint8(2), uint8(2), uint8(1), false, uint8(0b1000), bytes.Repeat([]byte{9}, 50))
	f.Fuzz(func(t *testing.T, famRaw, kRaw, rRaw, gRaw, hRaw uint8, uneven bool, mask uint8, payload []byte) {
		families := []Family{FamilyRS, FamilyLRC, FamilyCRS}
		p := Params{
			Family:    families[int(famRaw)%len(families)],
			K:         int(kRaw%8) + 1,
			R:         int(rRaw%3) + 1,
			G:         int(gRaw%3) + 1,
			H:         int(hRaw%3) + 1,
			Structure: Even,
		}
		if uneven {
			p.Structure = Uneven
		}
		c, err := New(p)
		if err != nil {
			// Some fuzzed shapes are legitimately rejected (e.g. GF(256)
			// limits); that is not a failure.
			t.Skip()
		}
		if len(payload) == 0 {
			payload = []byte{1}
		}
		mult := c.ShardSizeMultiple()
		size := ((len(payload)/c.DataShards() + 1 + mult - 1) / mult) * mult
		shards := make([][]byte, c.TotalShards())
		dataIdx := erasure.DataIndexes(c)
		for _, i := range dataIdx {
			shards[i] = make([]byte, size)
		}
		for i, b := range payload {
			d := dataIdx[i%len(dataIdx)]
			shards[d][(i/len(dataIdx))%size] = b
		}
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		want := erasure.CloneShards(shards)

		erased := 0
		for i := 0; i < c.TotalShards() && erased < c.FaultTolerance(); i++ {
			if mask&(1<<(i%8)) != 0 {
				shards[i] = nil
				erased++
			}
		}
		rep, err := c.ReconstructReport(shards, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Lost) > 0 || !rep.ImportantOK {
			t.Fatalf("%s: %d erasures (tolerance %d) reported lost=%d importantOK=%v",
				c.Name(), erased, c.FaultTolerance(), len(rep.Lost), rep.ImportantOK)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], want[i]) {
				t.Fatalf("%s: shard %d differs after reconstruct", c.Name(), i)
			}
		}
		if ok, err := c.Verify(shards); err != nil || !ok {
			t.Fatalf("%s: verify after reconstruct ok=%v err=%v", c.Name(), ok, err)
		}
	})
}
