package core

import (
	"bytes"
	"testing"

	"approxcode/internal/erasure"
)

// The paper fixes r+g = 3 (3DFTs) but the framework itself is generic
// (§3.5 "High Flexibility ... various parameters can be set"). These
// tests exercise 4DFT and higher configurations for the GF-matrix
// families, an extension beyond the paper's evaluation.

func TestFourDFTConfigurations(t *testing.T) {
	for _, p := range []Params{
		{Family: FamilyRS, K: 4, R: 2, G: 2, H: 2, Structure: Even},
		{Family: FamilyRS, K: 4, R: 1, G: 3, H: 3, Structure: Uneven},
		{Family: FamilyLRC, K: 3, R: 2, G: 2, H: 2, Structure: Uneven},
		{Family: FamilyCRS, K: 3, R: 1, G: 3, H: 2, Structure: Even},
	} {
		t.Run(p.Name(), func(t *testing.T) {
			c := mustNew(t, p)
			if c.ImportantFaultTolerance() != 4 {
				t.Fatalf("important tolerance %d want 4", c.ImportantFaultTolerance())
			}
			// Whole-stripe guarantee (r failures) holds exhaustively.
			if err := erasure.CheckExhaustive(c, stripeSize(c), 51); err != nil {
				t.Fatal(err)
			}
			// Important data survives every quadruple failure.
			stripe, err := erasure.RandomStripe(c, stripeSize(c), 52)
			if err != nil {
				t.Fatal(err)
			}
			wantImp := importantData(c, stripe)
			n := c.TotalShards()
			checked := 0
			erasure.Combinations(n, 4, func(idx []int) bool {
				checked++
				if checked > 400 { // sample; full sweep is O(N^4)
					return false
				}
				work := erasure.CloneShards(stripe)
				for _, e := range idx {
					work[e] = nil
				}
				rep, err := c.ReconstructReport(work, Options{})
				if err != nil {
					t.Fatalf("pattern %v: %v", idx, err)
				}
				if !rep.ImportantOK {
					t.Fatalf("pattern %v: important data lost in 4DFT config", idx)
				}
				got := importantData(c, work)
				for i := range wantImp {
					if !bytes.Equal(got[i], wantImp[i]) {
						t.Fatalf("pattern %v: important sub-block %d differs", idx, i)
					}
				}
				return true
			})
		})
	}
}

func TestFiveParityImportantTier(t *testing.T) {
	// r=2, g=3: important data tolerates any 5 failures.
	p := Params{Family: FamilyRS, K: 3, R: 2, G: 3, H: 2, Structure: Uneven}
	c := mustNew(t, p)
	if c.ImportantFaultTolerance() != 5 {
		t.Fatalf("important tolerance %d", c.ImportantFaultTolerance())
	}
	stripe, err := erasure.RandomStripe(c, stripeSize(c), 53)
	if err != nil {
		t.Fatal(err)
	}
	wantImp := importantData(c, stripe)
	// Worst case: all five failures hit the important codeword's nodes.
	work := erasure.CloneShards(stripe)
	work[c.dataNode(0, 0)] = nil
	work[c.dataNode(0, 1)] = nil
	work[c.parityNode(0, 0)] = nil
	work[c.globalNode(0)] = nil
	work[c.globalNode(2)] = nil
	rep, err := c.ReconstructReport(work, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ImportantOK {
		t.Fatal("important data lost under 5 failures with r+g=5")
	}
	got := importantData(c, work)
	for i := range wantImp {
		if !bytes.Equal(got[i], wantImp[i]) {
			t.Fatalf("important sub-block %d differs", i)
		}
	}
}

func TestReliabilityFormulaGeneralizesPU(t *testing.T) {
	// The P_U closed form is r+g agnostic; enumeration must agree for a
	// 4DFT configuration too.
	p := Params{Family: FamilyRS, K: 3, R: 2, G: 2, H: 2, Structure: Even}
	c := mustNew(t, p)
	// P_U at f = r+1 = 3: bad patterns are 3 failures within one local
	// stripe's k+r = 5 nodes.
	n := c.TotalShards()
	bad := 0
	total := 0
	erasure.Combinations(n, 3, func(idx []int) bool {
		total++
		if _, uOK := c.Survival(idx); !uOK {
			bad++
		}
		return true
	})
	wantBad := int(float64(p.H) * erasure.Binomial(p.K+p.R, p.R+1))
	if bad != wantBad {
		t.Fatalf("bad patterns %d want %d", bad, wantBad)
	}
}
