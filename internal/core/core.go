// Package core implements the Approximate Code framework (paper §3): an
// erasure coding framework for tiered video storage that protects
// important data (I frames) with r+g parities and unimportant data (P/B
// frames) with only r parities.
//
// The framework follows the paper's four steps:
//
//  1. Code input — an erasure code family (RS, LRC, STAR, TIP) and its
//     parameters.
//  2. Code segmentation — the input code's parities are split into r
//     local parities (applied to all data) and g global parities
//     (applied to the important data only), with r+g = 3 for 3DFTs.
//  3. Structure selection — Even (important data spread uniformly over
//     every data node) or Uneven (important data aggregated on one
//     dedicated local stripe).
//  4. Code generation — APPR.CodeName(k, r, g, h, Structure): h local
//     stripes of k data + r local-parity nodes, plus g global parity
//     nodes; N = h*(k+r) + g.
//
// Geometry. Every node column is divided into h equal sub-blocks. Each
// (stripe, sub-block) pair is an independent codeword across the
// stripe's k data nodes: important sub-stripes are (k, r+g) codewords of
// the full input code whose last g parities live on the global nodes;
// unimportant sub-stripes are (k, r) codewords of the input code's local
// prefix. The ratio of important data is exactly 1/h in both structures.
package core

import (
	"errors"
	"fmt"

	"approxcode/internal/crs"
	"approxcode/internal/erasure"
	"approxcode/internal/evenodd"
	"approxcode/internal/matrix"
	"approxcode/internal/obs"
	"approxcode/internal/parallel"
	"approxcode/internal/rs"
	"approxcode/internal/star"
	"approxcode/internal/tip"
)

// Structure selects how important data is distributed (paper Fig. 4).
type Structure int

const (
	// Even spreads important data uniformly: sub-block 0 of every data
	// node is important. Balanced workload.
	Even Structure = iota
	// Uneven aggregates important data on local stripe 0: every
	// sub-block of stripe 0's data nodes is important. Better
	// reliability (higher P_U and P_I, paper §3.4).
	Uneven
)

// String implements fmt.Stringer.
func (s Structure) String() string {
	switch s {
	case Even:
		return "Even"
	case Uneven:
		return "Uneven"
	default:
		return fmt.Sprintf("Structure(%d)", int(s))
	}
}

// Family identifies the input erasure code handed to the framework.
type Family string

// The four input-code families evaluated in the paper, plus CRS (cited
// by the paper as an accepted 3DFT input; implemented as a demonstration
// of the framework's flexibility claim).
const (
	FamilyRS   Family = "RS"
	FamilyLRC  Family = "LRC"
	FamilySTAR Family = "STAR"
	FamilyTIP  Family = "TIP"
	FamilyCRS  Family = "CRS"
)

// Params configures the generated Approximate Code (paper §3.1.4:
// APPR.CodeName(k, r, g, h, Structure)).
type Params struct {
	Family    Family
	K         int // data nodes per local stripe
	R         int // local parity nodes per local stripe
	G         int // global parity nodes per global stripe
	H         int // local stripes per global stripe; important ratio = 1/h
	Structure Structure
}

// Name renders the paper's APPR.CodeName(k,r,g,h,Structure) notation.
func (p Params) Name() string {
	return fmt.Sprintf("APPR.%s(%d,%d,%d,%d,%s)", p.Family, p.K, p.R, p.G, p.H, p.Structure)
}

// ErrUnrecoverable wraps erasure.ErrTooManyErasures for sub-blocks that
// exceed their codeword's fault tolerance; callers route such data to the
// video recovery module (fuzzy reconstruction).
var ErrUnrecoverable = erasure.ErrTooManyErasures

// SubBlock identifies one sub-block of one node: local stripe, node index
// (global numbering), and sub-block row m in [0, h).
type SubBlock struct {
	Node int
	Row  int
}

// Report describes the outcome of a best-effort reconstruction.
type Report struct {
	// ImportantOK is true when every important sub-stripe decoded.
	ImportantOK bool
	// Lost lists sub-blocks that could not be reconstructed (their
	// codeword had more erasures than parities). Empty on full recovery.
	Lost []SubBlock
	// BytesRebuilt counts reconstructed bytes written to failed nodes.
	BytesRebuilt int64
	// BytesRead counts survivor bytes consumed by the decoder.
	BytesRead int64
}

// Code is a generated Approximate Code. It implements erasure.Coder over
// the N = h*(k+r)+g node columns of a global stripe and adds
// tiered-recovery entry points. Immutable after New; safe for concurrent
// use.
type Code struct {
	p     Params
	local erasure.Coder // (k, r) prefix code for unimportant sub-stripes
	full  erasure.Coder // (k, r+g) input code for important sub-stripes
	par   parallel.Options

	// Optional obs histograms, set once by Instrument before concurrent
	// use; nil histograms are no-ops.
	encHist, recHist, verHist *obs.Histogram
}

var _ erasure.Coder = (*Code)(nil)

// New runs code input, segmentation and generation for the requested
// parameters and returns the resulting Approximate Code.
//
// Family constraints:
//   - RS, LRC: any k >= 1 with k+r+g <= 256; r >= 1, g >= 1.
//   - STAR: k must be prime; segmentation fixes r=2 (horizontal+diagonal
//     -> EVENODD local parities), g=1 (anti-diagonal -> global parity).
//   - TIP: k+2 must be prime; segmentation fixes r=1 (horizontal local
//     parity), g=2 (diagonal+anti-diagonal global parities).
//
// The optional trailing parallel.Options (last wins) tunes how encode,
// reconstruct and verify fan sub-stripe codewords — and, inside each
// codeword, shard byte ranges — over the shared worker pool. Absent, the
// engine defaults to GOMAXPROCS workers.
func New(p Params, par ...parallel.Options) (*Code, error) {
	if p.K < 1 || p.R < 1 || p.G < 1 || p.H < 1 {
		return nil, fmt.Errorf("core: invalid params %+v", p)
	}
	if p.Structure != Even && p.Structure != Uneven {
		return nil, fmt.Errorf("core: invalid structure %d", int(p.Structure))
	}
	var (
		local, full erasure.Coder
		err         error
	)
	po := parallel.Pick(par)
	switch p.Family {
	case FamilyRS:
		if local, err = rs.New(p.K, p.R, po); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if full, err = rs.New(p.K, p.R+p.G, po); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	case FamilyLRC:
		if local, err = rs.NewXORPrefix(p.K, p.R, po); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if full, err = rs.NewXORPrefix(p.K, p.R+p.G, po); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	case FamilyCRS:
		if local, err = crs.New(p.K, p.R, po); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if full, err = crs.New(p.K, p.R+p.G, po); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	case FamilySTAR:
		switch {
		case p.R == 2 && p.G == 1:
			// Horizontal + diagonal local (EVENODD), anti-diagonal global
			// (paper §3.3.1).
			if local, err = evenodd.New(p.K, po); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		case p.R == 1 && p.G == 2:
			// Horizontal local, diagonal + anti-diagonal global (the
			// APPR.STAR(k,1,2,h) configuration of the paper's §4 sweep).
			if local, err = star.NewHorizontal(p.K, po); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		default:
			return nil, fmt.Errorf("core: APPR.STAR requires (r,g) in {(2,1),(1,2)}, got r=%d g=%d", p.R, p.G)
		}
		if full, err = star.New(p.K, po); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	case FamilyTIP:
		if p.R != 1 || p.G != 2 {
			return nil, fmt.Errorf("core: APPR.TIP requires r=1 g=2, got r=%d g=%d", p.R, p.G)
		}
		if local, err = tip.NewLocal(p.K+2, po); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if full, err = tip.New(p.K+2, po); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	default:
		return nil, fmt.Errorf("core: unknown family %q", p.Family)
	}
	return &Code{p: p, local: local, full: full, par: po}, nil
}

// Params returns the configuration the code was generated from.
func (c *Code) Params() Params { return c.p }

// PlanCacheStats implements erasure.PlanCached by aggregating the decode-
// plan caches of the underlying local and full coders. Because all h*h
// sub-stripe codewords of a stripe — and all stripes coded through the
// same Code — share those two coder instances, a node failure that erases
// the same column of every codeword computes each decode plan once and
// reuses it across every sub-stripe and every subsequent stripe.
func (c *Code) PlanCacheStats() matrix.CacheStats {
	var s matrix.CacheStats
	if pc, ok := c.local.(erasure.PlanCached); ok {
		s = s.Add(pc.PlanCacheStats())
	}
	if pc, ok := c.full.(erasure.PlanCached); ok {
		s = s.Add(pc.PlanCacheStats())
	}
	return s
}

// Name implements erasure.Coder.
func (c *Code) Name() string { return c.p.Name() }

// DataShards implements erasure.Coder: h*k data nodes per global stripe.
func (c *Code) DataShards() int { return c.p.H * c.p.K }

// ParityShards implements erasure.Coder: h*r local + g global nodes.
func (c *Code) ParityShards() int { return c.p.H*c.p.R + c.p.G }

// TotalShards implements erasure.Coder: N = h*(k+r) + g.
func (c *Code) TotalShards() int { return c.p.H*(c.p.K+c.p.R) + c.p.G }

// FaultTolerance implements erasure.Coder: the whole-stripe guarantee is
// r (unimportant data bounds it). Important data tolerates
// ImportantFaultTolerance failures.
func (c *Code) FaultTolerance() int { return c.p.R }

// ImportantFaultTolerance is r+g: any r+g node failures leave every
// important sub-stripe decodable when the input code is MDS (paper
// §3.1.4).
func (c *Code) ImportantFaultTolerance() int { return c.p.R + c.p.G }

// ShardSizeMultiple implements erasure.Coder: node size must divide into
// h sub-blocks, each a multiple of the input code's granularity.
func (c *Code) ShardSizeMultiple() int { return c.p.H * c.full.ShardSizeMultiple() }

// Node-role helpers ---------------------------------------------------------

// NodeRole classifies a node index within the global stripe.
type NodeRole int

// Node roles within a global stripe.
const (
	RoleData NodeRole = iota
	RoleLocalParity
	RoleGlobalParity
)

// Role returns the role of node index i.
func (c *Code) Role(i int) NodeRole {
	per := c.p.K + c.p.R
	if i >= c.p.H*per {
		return RoleGlobalParity
	}
	if i%per < c.p.K {
		return RoleData
	}
	return RoleLocalParity
}

// StripeOf returns the local stripe that owns node i, or -1 for global
// parity nodes.
func (c *Code) StripeOf(i int) int {
	per := c.p.K + c.p.R
	if i >= c.p.H*per {
		return -1
	}
	return i / per
}

// dataNode returns the global node index of data column j of stripe l.
func (c *Code) dataNode(l, j int) int { return l*(c.p.K+c.p.R) + j }

// parityNode returns the global node index of local parity i of stripe l.
func (c *Code) parityNode(l, i int) int { return l*(c.p.K+c.p.R) + c.p.K + i }

// globalNode returns the global node index of global parity i.
func (c *Code) globalNode(i int) int { return c.p.H*(c.p.K+c.p.R) + i }

// DataNodeIndexes implements erasure.DataLayout: data nodes are
// interleaved with local parity nodes stripe by stripe.
func (c *Code) DataNodeIndexes() []int {
	idx := make([]int, 0, c.DataShards())
	for l := 0; l < c.p.H; l++ {
		for j := 0; j < c.p.K; j++ {
			idx = append(idx, c.dataNode(l, j))
		}
	}
	return idx
}

// Important reports whether sub-block row m of local stripe l holds
// important data: Even -> m == 0 in every stripe; Uneven -> every row of
// stripe 0.
func (c *Code) Important(l, m int) bool {
	if c.p.Structure == Even {
		return m == 0
	}
	return l == 0
}

// globalRow returns the sub-block row on the global parity nodes storing
// the g extra parities of important sub-stripe (l, m): Even packs one
// row per stripe, Uneven packs stripe 0's rows in order.
func (c *Code) globalRow(l, m int) int {
	if c.p.Structure == Even {
		return l
	}
	return m
}

// sub returns the m-th sub-block view of a node column.
func sub(col []byte, m, h int) []byte {
	s := len(col) / h
	return col[m*s : (m+1)*s]
}

// codewordNodes lists the global node indexes of the codeword covering
// sub-stripe (l, m): k data, r local parities, and — when important — the
// g global nodes.
func (c *Code) codewordNodes(l, m int) []int {
	imp := c.Important(l, m)
	n := c.p.K + c.p.R
	if imp {
		n += c.p.G
	}
	nodes := make([]int, 0, n)
	for j := 0; j < c.p.K; j++ {
		nodes = append(nodes, c.dataNode(l, j))
	}
	for i := 0; i < c.p.R; i++ {
		nodes = append(nodes, c.parityNode(l, i))
	}
	if imp {
		for i := 0; i < c.p.G; i++ {
			nodes = append(nodes, c.globalNode(i))
		}
	}
	return nodes
}

// subRowOnNode returns which sub-block row of the given codeword node
// carries sub-stripe (l, m): global parity nodes use globalRow, all
// stripe-local nodes use m itself.
func (c *Code) subRowOnNode(node, l, m int) int {
	if c.Role(node) == RoleGlobalParity {
		return c.globalRow(l, m)
	}
	return m
}

// Encode implements erasure.Coder: fills the h*r local parity nodes and
// g global parity nodes from the h*k data nodes.
func (c *Code) Encode(shards [][]byte) error {
	defer c.encHist.Start().Stop()
	if len(shards) != c.TotalShards() {
		return fmt.Errorf("%w: got %d, want %d", erasure.ErrShardCount, len(shards), c.TotalShards())
	}
	// Validate all data nodes present and equal sized.
	size := -1
	for l := 0; l < c.p.H; l++ {
		for j := 0; j < c.p.K; j++ {
			s := shards[c.dataNode(l, j)]
			if s == nil {
				return fmt.Errorf("%s encode: %w: data node missing", c.Name(), erasure.ErrShardSize)
			}
			if size == -1 {
				size = len(s)
			} else if len(s) != size {
				return fmt.Errorf("%s encode: %w: unequal data nodes", c.Name(), erasure.ErrShardSize)
			}
		}
	}
	if size == 0 || size%c.ShardSizeMultiple() != 0 {
		return fmt.Errorf("%s encode: %w: size %d not a positive multiple of %d",
			c.Name(), erasure.ErrShardSize, size, c.ShardSizeMultiple())
	}
	for i := range shards {
		if c.Role(i) != RoleData {
			if shards[i] == nil {
				shards[i] = make([]byte, size)
			} else if len(shards[i]) != size {
				return fmt.Errorf("%s encode: %w: parity node %d", c.Name(), erasure.ErrShardSize, i)
			}
		}
	}
	// Codewords touch disjoint sub-blocks, so the h*h sub-stripes encode
	// independently on the shared worker pool.
	nw := c.p.H * c.p.H
	errs := make([]error, nw)
	parallel.Run(nw, c.par.Workers(), func(t int) {
		errs[t] = c.encodeSubStripe(shards, t/c.p.H, t%c.p.H)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// encodeSubStripe encodes codeword (l, m) into the parity sub-blocks.
func (c *Code) encodeSubStripe(shards [][]byte, l, m int) error {
	coder := c.local
	if c.Important(l, m) {
		coder = c.full
	}
	nodes := c.codewordNodes(l, m)
	cw := make([][]byte, len(nodes))
	for i, node := range nodes {
		cw[i] = sub(shards[node], c.subRowOnNode(node, l, m), c.p.H)
	}
	return coder.Encode(cw)
}

// Reconstruct implements erasure.Coder: best-effort repair of every
// erased node. If any sub-block is unrecoverable the stripe is left with
// every recoverable sub-block repaired (unrecoverable ones zeroed) and
// an error wrapping erasure.ErrTooManyErasures is returned; use
// ReconstructReport for tiered-recovery details.
func (c *Code) Reconstruct(shards [][]byte) error {
	rep, err := c.ReconstructReport(shards, Options{})
	if err != nil {
		return err
	}
	if len(rep.Lost) > 0 {
		return fmt.Errorf("%s reconstruct: %w: %d sub-blocks lost",
			c.Name(), ErrUnrecoverable, len(rep.Lost))
	}
	return nil
}

// Options tunes ReconstructReport.
type Options struct {
	// ImportantOnly repairs only important sub-stripes (and the parity
	// sub-blocks of those codewords). This is the paper's fast recovery
	// mode under multi-node failures: unimportant losses are left to the
	// video recovery module.
	ImportantOnly bool
}

// ReconstructReport repairs erased nodes (nil entries) in place and
// reports what was recovered. Sub-blocks whose codeword exceeds its
// fault tolerance are zero-filled and listed in Report.Lost. An error is
// returned only for malformed input, never for unrecoverable data.
func (c *Code) ReconstructReport(shards [][]byte, opts Options) (*Report, error) {
	defer c.recHist.Start().Stop()
	size, err := erasure.CheckShards(shards, c.TotalShards(), c.ShardSizeMultiple(), true)
	if err != nil {
		return nil, fmt.Errorf("%s reconstruct: %w", c.Name(), err)
	}
	erased := erasure.Erased(shards)
	rep := &Report{ImportantOK: true}
	if len(erased) == 0 {
		return rep, nil
	}
	failed := make(map[int]bool, len(erased))
	for _, e := range erased {
		failed[e] = true
		shards[e] = make([]byte, size)
	}
	// Codewords touch disjoint sub-blocks, so repairs fan out over the
	// shared worker pool; per-codeword results merge in codeword order,
	// keeping the report deterministic.
	nw := c.p.H * c.p.H
	locals := make([]Report, nw)
	errs := make([]error, nw)
	parallel.Run(nw, c.par.Workers(), func(t int) {
		locals[t], errs[t] = c.repairSubStripe(shards, failed, t/c.p.H, t%c.p.H, opts, size)
	})
	for t := 0; t < nw; t++ {
		if errs[t] != nil {
			return nil, errs[t]
		}
		rep.Lost = append(rep.Lost, locals[t].Lost...)
		rep.BytesRebuilt += locals[t].BytesRebuilt
		rep.BytesRead += locals[t].BytesRead
		if !locals[t].ImportantOK {
			rep.ImportantOK = false
		}
	}
	// Global-parity sub-blocks not referenced by any codeword (Uneven
	// uses all h rows; Even uses rows 0..h-1 — all rows in both cases),
	// so nothing else to repair.
	return rep, nil
}

// repairSubStripe repairs one codeword (l, m), writing recovered
// sub-blocks into the (pre-allocated) failed node columns, and returns
// a per-codeword mini report. Codewords touch disjoint sub-blocks, so
// concurrent calls for different (l, m) are safe.
func (c *Code) repairSubStripe(shards [][]byte, failed map[int]bool, l, m int, opts Options, size int) (Report, error) {
	rep := Report{ImportantOK: true}
	subSize := size / c.p.H
	imp := c.Important(l, m)
	if opts.ImportantOnly && !imp {
		// Still must report losses on failed nodes.
		for _, node := range c.codewordNodes(l, m) {
			if failed[node] {
				rep.Lost = append(rep.Lost, SubBlock{Node: node, Row: c.subRowOnNode(node, l, m)})
			}
		}
		return rep, nil
	}
	coder := c.local
	if imp {
		coder = c.full
	}
	nodes := c.codewordNodes(l, m)
	cw := make([][]byte, len(nodes))
	nErased := 0
	for i, node := range nodes {
		if failed[node] {
			nErased++
			continue // leave nil: erased
		}
		cw[i] = sub(shards[node], c.subRowOnNode(node, l, m), c.p.H)
	}
	if nErased == 0 {
		return rep, nil
	}
	if nErased == len(nodes) {
		// The whole codeword is gone; nothing to decode from.
		for _, node := range nodes {
			rep.Lost = append(rep.Lost, SubBlock{Node: node, Row: c.subRowOnNode(node, l, m)})
		}
		if imp {
			rep.ImportantOK = false
		}
		return rep, nil
	}
	if err := coder.Reconstruct(cw); err != nil {
		if errors.Is(err, erasure.ErrTooManyErasures) {
			for i, node := range nodes {
				if cw[i] == nil || failed[node] {
					rep.Lost = append(rep.Lost, SubBlock{Node: node, Row: c.subRowOnNode(node, l, m)})
				}
			}
			if imp {
				rep.ImportantOK = false
			}
			return rep, nil
		}
		return rep, err
	}
	// Copy recovered sub-blocks back and account I/O.
	for i, node := range nodes {
		if failed[node] {
			copy(sub(shards[node], c.subRowOnNode(node, l, m), c.p.H), cw[i])
			rep.BytesRebuilt += int64(subSize)
		} else {
			rep.BytesRead += int64(subSize)
		}
	}
	return rep, nil
}

// Verify implements erasure.Coder.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	defer c.verHist.Start().Stop()
	if _, err := erasure.CheckShards(shards, c.TotalShards(), c.ShardSizeMultiple(), false); err != nil {
		return false, fmt.Errorf("%s verify: %w", c.Name(), err)
	}
	nw := c.p.H * c.p.H
	oks := make([]bool, nw)
	errs := make([]error, nw)
	parallel.Run(nw, c.par.Workers(), func(t int) {
		l, m := t/c.p.H, t%c.p.H
		coder := c.local
		if c.Important(l, m) {
			coder = c.full
		}
		nodes := c.codewordNodes(l, m)
		cw := make([][]byte, len(nodes))
		for i, node := range nodes {
			s := sub(shards[node], c.subRowOnNode(node, l, m), c.p.H)
			cw[i] = append([]byte(nil), s...)
		}
		oks[t], errs[t] = coder.Verify(cw)
	})
	for t := 0; t < nw; t++ {
		if errs[t] != nil {
			return false, errs[t]
		}
		if !oks[t] {
			return false, nil
		}
	}
	return true, nil
}

// UpdateCost returns the number of whole-block I/O writes needed to
// update sub-block (node=data node index, row m): 1 for the data block
// itself, r for the local parities, plus g when the sub-block is
// important. Averaged over all data sub-blocks this equals the paper's
// Table 2 entry 1 + r + g/h.
func (c *Code) UpdateCost(node, m int) (int, error) {
	if c.Role(node) != RoleData {
		return 0, fmt.Errorf("core: node %d is not a data node", node)
	}
	if m < 0 || m >= c.p.H {
		return 0, fmt.Errorf("core: sub-block row %d out of range", m)
	}
	l := c.StripeOf(node)
	cost := 1 + c.p.R
	if c.Important(l, m) {
		cost += c.p.G
	}
	return cost, nil
}

// AverageUpdateCost returns the exact average of UpdateCost over every
// data sub-block: 1 + r + g/h.
func (c *Code) AverageUpdateCost() float64 {
	total, count := 0, 0
	for l := 0; l < c.p.H; l++ {
		for j := 0; j < c.p.K; j++ {
			for m := 0; m < c.p.H; m++ {
				cost, _ := c.UpdateCost(c.dataNode(l, j), m)
				total += cost
				count++
			}
		}
	}
	return float64(total) / float64(count)
}

// StorageOverhead returns the measured ratio of total stored bytes to
// data bytes: ((k+r)h+g) / (kh), paper Table 2.
func (c *Code) StorageOverhead() float64 {
	return float64(c.TotalShards()) / float64(c.DataShards())
}

// ImportantRatio returns the fraction of data that is important (1/h).
func (c *Code) ImportantRatio() float64 { return 1 / float64(c.p.H) }
