package core

import (
	"approxcode/internal/obs"
)

// Instrument binds the code's encode/reconstruct/verify timings and the
// aggregated decode-plan-cache counters to reg. Call it once, before
// the code sees concurrent use (internal/store does this in Open); a
// nil registry hands out nil (no-op) histograms, so an uninstrumented
// code pays one predictable branch per operation.
//
// Plan-cache metrics are polled gauges over PlanCacheStats, so they
// reflect whichever Code registered first on a shared registry.
func (c *Code) Instrument(reg *obs.Registry) {
	c.encHist = reg.Histogram("core_encode_seconds")
	c.recHist = reg.Histogram("core_reconstruct_seconds")
	c.verHist = reg.Histogram("core_verify_seconds")
	if reg == nil {
		return
	}
	reg.GaugeFunc("plancache_hits", func() int64 { return int64(c.PlanCacheStats().Hits) })
	reg.GaugeFunc("plancache_misses", func() int64 { return int64(c.PlanCacheStats().Misses) })
	reg.GaugeFunc("plancache_evictions", func() int64 { return int64(c.PlanCacheStats().Evictions) })
	reg.GaugeFunc("plancache_entries", func() int64 { return int64(c.PlanCacheStats().Entries) })
}
