package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"approxcode/internal/erasure"
)

// randomParams decodes a seed into a valid Params for the GF-matrix
// families (any k), keeping sizes small.
func randomParams(rng *rand.Rand) Params {
	families := []Family{FamilyRS, FamilyLRC, FamilyCRS}
	p := Params{
		Family: families[rng.Intn(len(families))],
		K:      2 + rng.Intn(5),
		H:      1 + rng.Intn(4),
	}
	p.R = 1 + rng.Intn(2)
	p.G = 3 - p.R
	if rng.Intn(2) == 0 {
		p.Structure = Even
	} else {
		p.Structure = Uneven
	}
	return p
}

func TestQuickEncodeReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func(seed int64) bool {
		p := randomParams(rng)
		c, err := New(p)
		if err != nil {
			t.Logf("New(%+v): %v", p, err)
			return false
		}
		size := (1 + rng.Intn(3)) * c.ShardSizeMultiple()
		stripe, err := erasure.RandomStripe(c, size, seed)
		if err != nil {
			t.Logf("stripe: %v", err)
			return false
		}
		// Erase up to r random nodes: full recovery is guaranteed.
		fcount := 1 + rng.Intn(p.R)
		perm := rng.Perm(c.TotalShards())[:fcount]
		return erasure.CheckPattern(c, stripe, perm) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickImportantAlwaysSurvivesRPlusG(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	f := func(seed int64) bool {
		p := randomParams(rng)
		c, err := New(p)
		if err != nil {
			return false
		}
		size := c.ShardSizeMultiple()
		stripe, err := erasure.RandomStripe(c, size, seed)
		if err != nil {
			return false
		}
		want := importantData(c, stripe)
		perm := rng.Perm(c.TotalShards())[:p.R+p.G]
		work := erasure.CloneShards(stripe)
		for _, e := range perm {
			work[e] = nil
		}
		rep, err := c.ReconstructReport(work, Options{})
		if err != nil || !rep.ImportantOK {
			t.Logf("%s pattern %v: err=%v rep=%+v", c.Name(), perm, err, rep)
			return false
		}
		got := importantData(c, work)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVerifyCatchesSingleBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	f := func(seed int64) bool {
		p := randomParams(rng)
		c, err := New(p)
		if err != nil {
			return false
		}
		size := c.ShardSizeMultiple() * 2
		stripe, err := erasure.RandomStripe(c, size, seed)
		if err != nil {
			return false
		}
		node := rng.Intn(c.TotalShards())
		off := rng.Intn(size)
		bit := byte(1) << uint(rng.Intn(8))
		stripe[node][off] ^= bit
		ok, err := c.Verify(stripe)
		return err == nil && !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSurvivalMonotone(t *testing.T) {
	// Property: adding a failure can never turn an unrecoverable state
	// recoverable.
	rng := rand.New(rand.NewSource(74))
	f := func(seed int64) bool {
		p := randomParams(rng)
		c, err := New(p)
		if err != nil {
			return false
		}
		n := c.TotalShards()
		fcount := 1 + rng.Intn(n-1)
		perm := rng.Perm(n)
		small := perm[:fcount]
		large := perm[:fcount+min(n-fcount, 1+rng.Intn(2))]
		iS, uS := c.Survival(small)
		iL, uL := c.Survival(large)
		if !iS && iL {
			return false
		}
		if !uS && uL {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestQuickUpdateEquivalentToReencode(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	f := func(seed int64) bool {
		p := randomParams(rng)
		c, err := New(p)
		if err != nil {
			return false
		}
		size := c.ShardSizeMultiple()
		stripe, err := erasure.RandomStripe(c, size, seed)
		if err != nil {
			return false
		}
		data := c.DataNodeIndexes()
		node := data[rng.Intn(len(data))]
		row := rng.Intn(p.H)
		newData := make([]byte, size/p.H)
		rng.Read(newData)
		if _, err := c.Update(stripe, node, row, newData); err != nil {
			return false
		}
		ok, err := c.Verify(stripe)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
