package core

import (
	"fmt"

	"approxcode/internal/erasure"
)

// locateSubStripe maps a (node, row) sub-block to the codeword (l, m)
// that contains it.
func (c *Code) locateSubStripe(node, row int) (l, m int, err error) {
	if node < 0 || node >= c.TotalShards() {
		return 0, 0, fmt.Errorf("core: node %d out of range", node)
	}
	if row < 0 || row >= c.p.H {
		return 0, 0, fmt.Errorf("core: sub-block row %d out of range", row)
	}
	if c.Role(node) == RoleGlobalParity {
		// Invert globalRow: Even packs stripe l at row l (m = 0);
		// Uneven packs stripe 0's row m at row m.
		if c.p.Structure == Even {
			return row, 0, nil
		}
		return 0, row, nil
	}
	return c.StripeOf(node), row, nil
}

// SubBlockImportant reports whether sub-block (node, row) belongs to an
// important sub-stripe — i.e. whether a loss there is protected by the
// full (k, r+g) codeword or only the local (k, r) one. Storage layers
// use it to decide whether an unrecoverable loss may be routed to the
// approximate (interpolation) fallback.
func (c *Code) SubBlockImportant(node, row int) (bool, error) {
	l, m, err := c.locateSubStripe(node, row)
	if err != nil {
		return false, err
	}
	return c.Important(l, m), nil
}

// ReadSubBlock returns the contents of sub-block (node, row) of a global
// stripe whose erased node columns are nil — the degraded-read path of a
// storage layer. If the node is alive the sub-block is returned
// directly; otherwise the owning sub-stripe codeword is decoded from its
// survivors (only that codeword, not the whole stripe). The returned
// slice is freshly allocated for decoded blocks and aliases the shard
// for direct reads.
func (c *Code) ReadSubBlock(shards [][]byte, node, row int) ([]byte, error) {
	data, _, err := c.ReadSubBlockReport(shards, node, row)
	return data, err
}

// ReadSubBlockReport is ReadSubBlock plus a flag telling whether the
// block was served directly (false) or decoded from survivors (true) —
// the storage layer's degraded-read counter hook.
func (c *Code) ReadSubBlockReport(shards [][]byte, node, row int) ([]byte, bool, error) {
	if len(shards) != c.TotalShards() {
		return nil, false, fmt.Errorf("%w: got %d, want %d", erasure.ErrShardCount, len(shards), c.TotalShards())
	}
	l, m, err := c.locateSubStripe(node, row)
	if err != nil {
		return nil, false, err
	}
	if shards[node] != nil {
		if len(shards[node])%c.ShardSizeMultiple() != 0 {
			return nil, false, fmt.Errorf("%w: node %d", erasure.ErrShardSize, node)
		}
		return sub(shards[node], row, c.p.H), false, nil
	}
	coder := c.local
	if c.Important(l, m) {
		coder = c.full
	}
	nodes := c.codewordNodes(l, m)
	cw := make([][]byte, len(nodes))
	pos := -1
	size := 0
	for i, n := range nodes {
		if n == node {
			pos = i
		}
		if shards[n] == nil {
			continue
		}
		if size == 0 {
			size = len(shards[n])
		} else if len(shards[n]) != size {
			return nil, false, fmt.Errorf("%w: unequal shard sizes", erasure.ErrShardSize)
		}
		cw[i] = sub(shards[n], c.subRowOnNode(n, l, m), c.p.H)
	}
	if pos < 0 {
		// The node is erased and does not participate in the codeword
		// that would own (l, m) — only possible for a global parity node
		// asked for an unimportant row, which cannot happen given
		// locateSubStripe's mapping; guard anyway.
		return nil, false, fmt.Errorf("core: node %d not part of sub-stripe (%d,%d)", node, l, m)
	}
	if size == 0 {
		return nil, false, fmt.Errorf("%w: no survivors", erasure.ErrShardSize)
	}
	if err := coder.Reconstruct(cw); err != nil {
		return nil, false, fmt.Errorf("core: degraded read of (%d,%d): %w", node, row, err)
	}
	return cw[pos], true, nil
}
