package core

import (
	"fmt"

	"approxcode/internal/erasure"
	"approxcode/internal/gf256"
)

// UpdateResult reports a single-write update.
type UpdateResult struct {
	// IOWrites is the number of whole-block writes performed: 1 (the
	// data sub-block) + touched local parities (+ touched global
	// parities for important sub-blocks). Averaged over all sub-blocks
	// this reproduces the paper's Table 2 single-write cost.
	IOWrites int
	// TouchedNodes lists every node written (including the data node).
	TouchedNodes []int
}

// Update overwrites data sub-block (node, row) with newData and patches
// every affected parity incrementally (delta-based), without re-encoding
// the stripe. The stripe must be complete (no erasures).
func (c *Code) Update(shards [][]byte, node, row int, newData []byte) (*UpdateResult, error) {
	size, err := erasure.CheckShards(shards, c.TotalShards(), c.ShardSizeMultiple(), false)
	if err != nil {
		return nil, fmt.Errorf("%s update: %w", c.Name(), err)
	}
	if c.Role(node) != RoleData {
		return nil, fmt.Errorf("%s update: node %d is not a data node", c.Name(), node)
	}
	if row < 0 || row >= c.p.H {
		return nil, fmt.Errorf("%s update: row %d out of range", c.Name(), row)
	}
	subSize := size / c.p.H
	if len(newData) != subSize {
		return nil, fmt.Errorf("%s update: %w: new data %d bytes, want %d",
			c.Name(), erasure.ErrShardSize, len(newData), subSize)
	}
	l := c.StripeOf(node)
	m := row
	imp := c.Important(l, m)
	coder := c.local
	if imp {
		coder = c.full
	}
	updater, ok := coder.(erasure.Updater)
	if !ok {
		return nil, fmt.Errorf("%s update: input code %s does not support incremental updates",
			c.Name(), coder.Name())
	}
	// Delta of the changed sub-block.
	old := sub(shards[node], row, c.p.H)
	delta := make([]byte, subSize)
	copy(delta, old)
	gf256.XorSlice(newData, delta)
	// Assemble the codeword views and find the changed column's index.
	nodes := c.codewordNodes(l, m)
	cw := make([][]byte, len(nodes))
	dataIdx := -1
	for i, n := range nodes {
		cw[i] = sub(shards[n], c.subRowOnNode(n, l, m), c.p.H)
		if n == node {
			dataIdx = i
		}
	}
	touched, err := updater.ApplyDelta(cw, dataIdx, delta)
	if err != nil {
		return nil, fmt.Errorf("%s update: %w", c.Name(), err)
	}
	copy(old, newData)
	res := &UpdateResult{IOWrites: 1 + len(touched), TouchedNodes: []int{node}}
	for _, t := range touched {
		res.TouchedNodes = append(res.TouchedNodes, nodes[t])
	}
	return res, nil
}
