package core

import (
	"bytes"
	"math/rand"
	"testing"

	"approxcode/internal/erasure"
)

// TestPlanCacheSharedAcrossSubStripes verifies the decode-plan caches of
// the underlying coders are shared by every sub-stripe codeword and by
// subsequent stripes: a failed node erases the same column of every
// codeword, so the whole recovery performs only a handful of plan
// computations (one per distinct erasure pattern, not one per codeword).
func TestPlanCacheSharedAcrossSubStripes(t *testing.T) {
	c, err := New(Params{Family: FamilyRS, K: 4, R: 2, G: 2, H: 4, Structure: Even})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	size := c.ShardSizeMultiple() * 64
	stripe := func() [][]byte {
		shards := make([][]byte, c.TotalShards())
		for _, i := range c.DataNodeIndexes() {
			shards[i] = make([]byte, size)
			rng.Read(shards[i])
		}
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		return shards
	}

	fail := func(orig [][]byte, nodes ...int) {
		t.Helper()
		work := erasure.CloneShards(orig)
		for _, n := range nodes {
			work[n] = nil
		}
		if err := c.Reconstruct(work); err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			if !bytes.Equal(work[i], orig[i]) {
				t.Fatalf("node %d wrong after recovery", i)
			}
		}
	}

	// Two data nodes of stripe 0 fail: every one of the h*h codewords
	// decodes, but only two distinct erasure patterns exist (important
	// codewords see one pattern, unimportant ones another), so at most
	// two plan computations happen — everything else is cache hits.
	s0 := c.PlanCacheStats()
	orig := stripe()
	fail(orig, 0, 1)
	s1 := c.PlanCacheStats()
	if d := s1.Misses - s0.Misses; d > 2 {
		t.Fatalf("first recovery computed %d plans, want <= 2 (h*h=%d codewords)", d, c.p.H*c.p.H)
	}
	if s1.Hits <= s0.Hits {
		t.Fatal("codewords did not share cached plans")
	}

	// A second stripe with the same failed nodes reuses the plans: zero
	// new computations.
	orig2 := stripe()
	fail(orig2, 0, 1)
	s2 := c.PlanCacheStats()
	if s2.Misses != s1.Misses {
		t.Fatalf("cross-stripe decode recomputed plans: %+v -> %+v", s1, s2)
	}
	if s2.Hits <= s1.Hits {
		t.Fatal("cross-stripe decode did not hit the cache")
	}
}
