package core

import (
	"bytes"
	"testing"

	"approxcode/internal/erasure"
)

func TestReadSubBlockDirectAndDegraded(t *testing.T) {
	for _, p := range testParams() {
		t.Run(p.Name(), func(t *testing.T) {
			c := mustNew(t, p)
			stripe, err := erasure.RandomStripe(c, stripeSize(c), 31)
			if err != nil {
				t.Fatal(err)
			}
			// Direct reads match the stored sub-blocks on every node/row.
			for node := 0; node < c.TotalShards(); node++ {
				for m := 0; m < p.H; m++ {
					got, err := c.ReadSubBlock(stripe, node, m)
					if err != nil {
						t.Fatalf("direct read (%d,%d): %v", node, m, err)
					}
					if !bytes.Equal(got, sub(stripe[node], m, p.H)) {
						t.Fatalf("direct read (%d,%d) differs", node, m)
					}
				}
			}
			// Degraded reads: erase each node in turn, read all its
			// sub-blocks through decoding.
			for node := 0; node < c.TotalShards(); node++ {
				work := erasure.CloneShards(stripe)
				work[node] = nil
				for m := 0; m < p.H; m++ {
					got, err := c.ReadSubBlock(work, node, m)
					if err != nil {
						t.Fatalf("degraded read (%d,%d): %v", node, m, err)
					}
					if !bytes.Equal(got, sub(stripe[node], m, p.H)) {
						t.Fatalf("degraded read (%d,%d) differs", node, m)
					}
				}
			}
		})
	}
}

func TestReadSubBlockImportantUnderTripleFailure(t *testing.T) {
	p := Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 3, Structure: Uneven}
	c := mustNew(t, p)
	stripe, err := erasure.RandomStripe(c, stripeSize(c), 5)
	if err != nil {
		t.Fatal(err)
	}
	work := erasure.CloneShards(stripe)
	// Fail all of stripe 0's data nodes except one, plus its parity:
	// 3 failures, important rows still decodable via globals.
	work[c.dataNode(0, 0)] = nil
	work[c.dataNode(0, 1)] = nil
	work[c.parityNode(0, 0)] = nil
	for m := 0; m < p.H; m++ {
		got, err := c.ReadSubBlock(work, c.dataNode(0, 0), m)
		if err != nil {
			t.Fatalf("row %d: %v", m, err)
		}
		if !bytes.Equal(got, sub(stripe[c.dataNode(0, 0)], m, p.H)) {
			t.Fatalf("row %d differs", m)
		}
	}
}

func TestReadSubBlockBeyondToleranceFails(t *testing.T) {
	p := Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 3, Structure: Uneven}
	c := mustNew(t, p)
	stripe, err := erasure.RandomStripe(c, stripeSize(c), 6)
	if err != nil {
		t.Fatal(err)
	}
	work := erasure.CloneShards(stripe)
	// Two failures in unimportant stripe 1: its rows are gone (r = 1).
	work[c.dataNode(1, 0)] = nil
	work[c.dataNode(1, 1)] = nil
	if _, err := c.ReadSubBlock(work, c.dataNode(1, 0), 0); err == nil {
		t.Fatal("unreadable sub-block returned data")
	}
	// Important stripe 0 is still fully readable.
	if _, err := c.ReadSubBlock(work, c.dataNode(0, 0), 0); err != nil {
		t.Fatalf("healthy read failed: %v", err)
	}
}

func TestReadSubBlockValidation(t *testing.T) {
	c := mustNew(t, Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 2, Structure: Even})
	stripe, err := erasure.RandomStripe(c, stripeSize(c), 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadSubBlock(stripe[:3], 0, 0); err == nil {
		t.Fatal("short stripe accepted")
	}
	if _, err := c.ReadSubBlock(stripe, -1, 0); err == nil {
		t.Fatal("bad node accepted")
	}
	if _, err := c.ReadSubBlock(stripe, 0, 9); err == nil {
		t.Fatal("bad row accepted")
	}
}
