package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"approxcode/internal/erasure"
)

// testParams are small-but-representative configurations covering every
// family and both structures.
func testParams() []Params {
	var out []Params
	base := []Params{
		{Family: FamilyRS, K: 3, R: 1, G: 2, H: 3},
		{Family: FamilyRS, K: 4, R: 2, G: 1, H: 2},
		{Family: FamilyLRC, K: 3, R: 1, G: 2, H: 2},
		{Family: FamilySTAR, K: 5, R: 2, G: 1, H: 2},
		{Family: FamilySTAR, K: 5, R: 1, G: 2, H: 2},
		{Family: FamilyTIP, K: 3, R: 1, G: 2, H: 2},
		{Family: FamilyTIP, K: 5, R: 1, G: 2, H: 2},
		{Family: FamilyCRS, K: 3, R: 1, G: 2, H: 2},
	}
	for _, p := range base {
		pe, pu := p, p
		pe.Structure, pu.Structure = Even, Uneven
		out = append(out, pe, pu)
	}
	return out
}

func mustNew(t *testing.T, p Params) *Code {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatalf("New(%+v): %v", p, err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := []Params{
		{Family: FamilyRS, K: 0, R: 1, G: 2, H: 2},
		{Family: FamilyRS, K: 3, R: 0, G: 2, H: 2},
		{Family: FamilyRS, K: 3, R: 1, G: 0, H: 2},
		{Family: FamilyRS, K: 3, R: 1, G: 2, H: 0},
		{Family: FamilyRS, K: 3, R: 1, G: 2, H: 2, Structure: Structure(9)},
		{Family: FamilySTAR, K: 5, R: 3, G: 1, H: 2}, // STAR needs (r,g) in {(2,1),(1,2)}
		{Family: FamilySTAR, K: 6, R: 2, G: 1, H: 2}, // k not prime
		{Family: FamilyTIP, K: 5, R: 2, G: 1, H: 2},  // TIP needs r=1 g=2
		{Family: FamilyTIP, K: 4, R: 1, G: 2, H: 2},  // k+2 not prime
		{Family: Family("XYZ"), K: 3, R: 1, G: 2, H: 2},
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("New(%+v) accepted", p)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := mustNew(t, Params{Family: FamilyRS, K: 4, R: 1, G: 2, H: 3, Structure: Uneven})
	if c.TotalShards() != 3*5+2 {
		t.Fatalf("N=%d want 17", c.TotalShards())
	}
	if c.DataShards() != 12 || c.ParityShards() != 5 {
		t.Fatal("shard counts wrong")
	}
	if c.FaultTolerance() != 1 || c.ImportantFaultTolerance() != 3 {
		t.Fatal("tolerances wrong")
	}
	if c.Name() != "APPR.RS(4,1,2,3,Uneven)" {
		t.Fatalf("name %q", c.Name())
	}
	// Roles: nodes 0-3 data, 4 local parity, ..., 15-16 global.
	if c.Role(0) != RoleData || c.Role(4) != RoleLocalParity || c.Role(15) != RoleGlobalParity {
		t.Fatal("roles wrong")
	}
	if c.StripeOf(7) != 1 || c.StripeOf(16) != -1 {
		t.Fatal("StripeOf wrong")
	}
	if math.Abs(c.ImportantRatio()-1.0/3) > 1e-12 {
		t.Fatal("important ratio wrong")
	}
}

func TestImportantMap(t *testing.T) {
	even := mustNew(t, Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 3, Structure: Even})
	uneven := mustNew(t, Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 3, Structure: Uneven})
	impCount := func(c *Code) int {
		n := 0
		for l := 0; l < 3; l++ {
			for m := 0; m < 3; m++ {
				if c.Important(l, m) {
					n++
				}
			}
		}
		return n
	}
	// Both structures must mark exactly h sub-stripes (ratio 1/h).
	if impCount(even) != 3 || impCount(uneven) != 3 {
		t.Fatal("important sub-stripe count != h")
	}
	if !even.Important(2, 0) || even.Important(0, 1) {
		t.Fatal("Even: important must be row 0 of every stripe")
	}
	if !uneven.Important(0, 2) || uneven.Important(1, 0) {
		t.Fatal("Uneven: important must be all rows of stripe 0")
	}
}

func stripeSize(c *Code) int { return 4 * c.ShardSizeMultiple() }

// importantData extracts (copy) every important data sub-block.
func importantData(c *Code, shards [][]byte) [][]byte {
	p := c.Params()
	var out [][]byte
	for l := 0; l < p.H; l++ {
		for m := 0; m < p.H; m++ {
			if !c.Important(l, m) {
				continue
			}
			for j := 0; j < p.K; j++ {
				s := sub(shards[c.dataNode(l, j)], m, p.H)
				out = append(out, append([]byte(nil), s...))
			}
		}
	}
	return out
}

func TestEncodeVerifyRoundTrip(t *testing.T) {
	for _, p := range testParams() {
		t.Run(p.Name(), func(t *testing.T) {
			c := mustNew(t, p)
			stripe, err := erasure.RandomStripe(c, stripeSize(c), 42)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := c.Verify(stripe)
			if err != nil || !ok {
				t.Fatalf("verify ok=%v err=%v", ok, err)
			}
			// Corrupt one byte of a global parity node: Verify must fail.
			stripe[c.TotalShards()-1][0] ^= 0x5A
			if ok, _ := c.Verify(stripe); ok {
				t.Fatal("corrupted global parity passed verify")
			}
		})
	}
}

func TestExhaustiveWholeStripeTolerance(t *testing.T) {
	// As an erasure.Coder, the whole-stripe guarantee is r failures.
	for _, p := range testParams() {
		t.Run(p.Name(), func(t *testing.T) {
			c := mustNew(t, p)
			if err := erasure.CheckExhaustive(c, stripeSize(c), 7); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestImportantSurvivesRPlusGFailures(t *testing.T) {
	// The paper's central reliability claim: important data tolerates any
	// r+g node failures. Exhaustive over every pattern of size r+1..r+g.
	for _, p := range testParams() {
		t.Run(p.Name(), func(t *testing.T) {
			c := mustNew(t, p)
			stripe, err := erasure.RandomStripe(c, stripeSize(c), 13)
			if err != nil {
				t.Fatal(err)
			}
			wantImp := importantData(c, stripe)
			n := c.TotalShards()
			for f := p.R + 1; f <= p.R+p.G; f++ {
				erasure.Combinations(n, f, func(idx []int) bool {
					work := erasure.CloneShards(stripe)
					for _, e := range idx {
						work[e] = nil
					}
					rep, err := c.ReconstructReport(work, Options{})
					if err != nil {
						t.Fatalf("pattern %v: %v", idx, err)
					}
					if !rep.ImportantOK {
						t.Fatalf("pattern %v: important data lost", idx)
					}
					got := importantData(c, work)
					for i := range wantImp {
						if !bytes.Equal(got[i], wantImp[i]) {
							t.Fatalf("pattern %v: important sub-block %d differs", idx, i)
						}
					}
					return true
				})
			}
		})
	}
}

func TestUnimportantLossIsReported(t *testing.T) {
	p := Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 3, Structure: Uneven}
	c := mustNew(t, p)
	stripe, err := erasure.RandomStripe(c, stripeSize(c), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Fail two data nodes of unimportant stripe 1: exceeds r=1.
	work := erasure.CloneShards(stripe)
	work[c.dataNode(1, 0)] = nil
	work[c.dataNode(1, 1)] = nil
	rep, err := c.ReconstructReport(work, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ImportantOK {
		t.Fatal("important data must survive (stripe 0 intact)")
	}
	if len(rep.Lost) != 2*p.H {
		t.Fatalf("lost %d sub-blocks, want %d", len(rep.Lost), 2*p.H)
	}
	// Reconstruct (the strict erasure.Coder entry point) must error.
	work2 := erasure.CloneShards(stripe)
	work2[c.dataNode(1, 0)] = nil
	work2[c.dataNode(1, 1)] = nil
	if err := c.Reconstruct(work2); !errors.Is(err, erasure.ErrTooManyErasures) {
		t.Fatalf("want ErrTooManyErasures, got %v", err)
	}
}

func TestImportantOnlyMode(t *testing.T) {
	p := Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 3, Structure: Even}
	c := mustNew(t, p)
	stripe, err := erasure.RandomStripe(c, stripeSize(c), 5)
	if err != nil {
		t.Fatal(err)
	}
	wantImp := importantData(c, stripe)
	work := erasure.CloneShards(stripe)
	f1, f2 := c.dataNode(0, 0), c.dataNode(1, 1)
	work[f1], work[f2] = nil, nil
	rep, err := c.ReconstructReport(work, Options{ImportantOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ImportantOK {
		t.Fatal("important data must be recovered")
	}
	got := importantData(c, work)
	for i := range wantImp {
		if !bytes.Equal(got[i], wantImp[i]) {
			t.Fatalf("important sub-block %d differs", i)
		}
	}
	// Unimportant rows of the failed nodes are reported lost.
	if len(rep.Lost) != 2*(p.H-1) {
		t.Fatalf("lost %d, want %d", len(rep.Lost), 2*(p.H-1))
	}
	// ImportantOnly must rebuild strictly less than a full repair.
	workFull := erasure.CloneShards(stripe)
	workFull[f1], workFull[f2] = nil, nil
	repFull, err := c.ReconstructReport(workFull, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesRebuilt >= repFull.BytesRebuilt {
		t.Fatalf("important-only rebuilt %d >= full %d", rep.BytesRebuilt, repFull.BytesRebuilt)
	}
}

func TestUpdateCostAverageMatchesFormula(t *testing.T) {
	// Paper Table 2: avg single write overhead = 1 + r + g/h.
	for _, p := range testParams() {
		c := mustNew(t, p)
		want := 1 + float64(p.R) + float64(p.G)/float64(p.H)
		if got := c.AverageUpdateCost(); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: avg update cost %v want %v", p.Name(), got, want)
		}
	}
}

func TestUpdateCostErrors(t *testing.T) {
	c := mustNew(t, Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 2, Structure: Even})
	if _, err := c.UpdateCost(c.parityNode(0, 0), 0); err == nil {
		t.Fatal("parity node accepted")
	}
	if _, err := c.UpdateCost(0, 5); err == nil {
		t.Fatal("row out of range accepted")
	}
}

func TestStorageOverheadFormula(t *testing.T) {
	// Paper Table 2: ((k+r)h+g)/(kh).
	for _, p := range testParams() {
		c := mustNew(t, p)
		want := float64((p.K+p.R)*p.H+p.G) / float64(p.K*p.H)
		if got := c.StorageOverhead(); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: overhead %v want %v", p.Name(), got, want)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	c := mustNew(t, Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 2, Structure: Even})
	if err := c.Encode(make([][]byte, 3)); !errors.Is(err, erasure.ErrShardCount) {
		t.Fatalf("want ErrShardCount, got %v", err)
	}
	shards := make([][]byte, c.TotalShards())
	if err := c.Encode(shards); !errors.Is(err, erasure.ErrShardSize) {
		t.Fatalf("missing data: want ErrShardSize, got %v", err)
	}
	for i := range shards {
		shards[i] = make([]byte, 3) // not a multiple of h*mult=2
	}
	if err := c.Encode(shards); !errors.Is(err, erasure.ErrShardSize) {
		t.Fatalf("bad multiple: want ErrShardSize, got %v", err)
	}
}

func TestPlanRepairMatchesReconstruct(t *testing.T) {
	for _, p := range testParams() {
		t.Run(p.Name(), func(t *testing.T) {
			c := mustNew(t, p)
			size := stripeSize(c)
			stripe, err := erasure.RandomStripe(c, size, 21)
			if err != nil {
				t.Fatal(err)
			}
			n := c.TotalShards()
			for f := 1; f <= p.R+p.G; f++ {
				count := 0
				erasure.Combinations(n, f, func(idx []int) bool {
					count++
					if count > 40 { // sample: full sweep done in tolerance tests
						return false
					}
					plan, err := c.PlanRepair(size, idx, Options{})
					if err != nil {
						t.Fatalf("plan %v: %v", idx, err)
					}
					work := erasure.CloneShards(stripe)
					for _, e := range idx {
						work[e] = nil
					}
					rep, err := c.ReconstructReport(work, Options{})
					if err != nil {
						t.Fatalf("reconstruct %v: %v", idx, err)
					}
					if len(plan.Unrecoverable) != len(rep.Lost) {
						t.Fatalf("pattern %v: plan says %d unrecoverable, reconstruct lost %d",
							idx, len(plan.Unrecoverable), len(rep.Lost))
					}
					if plan.TotalWrite() != rep.BytesRebuilt {
						t.Fatalf("pattern %v: plan writes %d, rebuilt %d",
							idx, plan.TotalWrite(), rep.BytesRebuilt)
					}
					return true
				})
			}
		})
	}
}

func TestPlanRepairValidation(t *testing.T) {
	c := mustNew(t, Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 2, Structure: Even})
	if _, err := c.PlanRepair(3, []int{0}, Options{}); err == nil {
		t.Fatal("bad node size accepted")
	}
	if _, err := c.PlanRepair(stripeSize(c), []int{-1}, Options{}); err == nil {
		t.Fatal("bad node index accepted")
	}
}

func TestReconstructNoErasuresNoop(t *testing.T) {
	c := mustNew(t, Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 2, Structure: Uneven})
	stripe, err := erasure.RandomStripe(c, stripeSize(c), 9)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.ReconstructReport(stripe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ImportantOK || rep.BytesRebuilt != 0 || len(rep.Lost) != 0 {
		t.Fatalf("unexpected report %+v", rep)
	}
}

func TestParityReductionHeadline(t *testing.T) {
	// Abstract: "reduces the number of parities by up to 55%".
	// RS(k,3) uses 3 parity nodes per k data nodes; APPR.RS(k,1,2,6) uses
	// (6*1+2)/6 = 1.33 parity nodes per k data. Reduction = 1 - 8/18.
	p := Params{Family: FamilyRS, K: 6, R: 1, G: 2, H: 6, Structure: Even}
	c := mustNew(t, p)
	orig := 3 * p.H // RS(k,3) over the same h stripes
	got := c.ParityShards()
	reduction := 1 - float64(got)/float64(orig)
	if math.Abs(reduction-(1-8.0/18)) > 1e-12 {
		t.Fatalf("parity reduction %.4f", reduction)
	}
	if reduction < 0.55 {
		t.Fatalf("headline parity reduction %.2f < 0.55", reduction)
	}
}

func ExampleNew() {
	c, err := New(Params{Family: FamilyRS, K: 4, R: 1, G: 2, H: 3, Structure: Uneven})
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Name(), c.TotalShards(), c.StorageOverhead())
	// Output: APPR.RS(4,1,2,3,Uneven) 17 1.4166666666666667
}
