package core

import (
	"fmt"
)

// RepairTask is the repair of one damaged codeword: read Bytes from each
// node in ReadNodes, decode, and write Bytes to each node in WriteNodes.
// The cluster simulator schedules these tasks over simulated disks and
// NICs to reproduce the paper's recovery-time experiment (Fig. 13).
type RepairTask struct {
	ReadNodes  []int
	WriteNodes []int
	Bytes      int64
}

// RepairPlan describes, without moving any data, the I/O a repair of the
// given failed nodes requires.
type RepairPlan struct {
	// Tasks lists one entry per damaged codeword.
	Tasks []RepairTask
	// ReadBytes maps surviving node index -> bytes read from it.
	ReadBytes map[int]int64
	// WriteBytes maps replacement node index -> bytes written to it.
	WriteBytes map[int]int64
	// Unrecoverable lists sub-blocks that no codeword can rebuild.
	Unrecoverable []SubBlock
}

// CodewordsRepaired counts sub-stripes that needed decoding.
func (p *RepairPlan) CodewordsRepaired() int { return len(p.Tasks) }

// TotalRead sums bytes read across all survivors.
func (p *RepairPlan) TotalRead() int64 {
	var t int64
	for _, v := range p.ReadBytes {
		t += v
	}
	return t
}

// TotalWrite sums bytes written across all replacements.
func (p *RepairPlan) TotalWrite() int64 {
	var t int64
	for _, v := range p.WriteBytes {
		t += v
	}
	return t
}

// PlanRepair computes the repair I/O plan for the given failed node set
// and node size. Reads are modeled as k surviving sub-blocks per damaged
// codeword (the information-theoretic minimum for an MDS decode),
// preferring data nodes over parities, matching how the recovery
// pipeline in internal/cluster issues requests.
func (c *Code) PlanRepair(nodeSize int, failed []int, opts Options) (*RepairPlan, error) {
	if nodeSize <= 0 || nodeSize%c.ShardSizeMultiple() != 0 {
		return nil, fmt.Errorf("core: node size %d not a positive multiple of %d",
			nodeSize, c.ShardSizeMultiple())
	}
	isFailed := make(map[int]bool, len(failed))
	for _, f := range failed {
		if f < 0 || f >= c.TotalShards() {
			return nil, fmt.Errorf("core: failed node %d out of range", f)
		}
		isFailed[f] = true
	}
	plan := &RepairPlan{
		ReadBytes:  make(map[int]int64),
		WriteBytes: make(map[int]int64),
	}
	subSize := int64(nodeSize / c.p.H)
	for l := 0; l < c.p.H; l++ {
		for m := 0; m < c.p.H; m++ {
			nodes := c.codewordNodes(l, m)
			var erasedHere []int
			var survivors []int
			for _, node := range nodes {
				if isFailed[node] {
					erasedHere = append(erasedHere, node)
				} else {
					survivors = append(survivors, node)
				}
			}
			if len(erasedHere) == 0 {
				continue
			}
			imp := c.Important(l, m)
			coder := c.local
			if imp {
				coder = c.full
			}
			if (opts.ImportantOnly && !imp) || len(erasedHere) > coder.FaultTolerance() {
				for _, node := range erasedHere {
					plan.Unrecoverable = append(plan.Unrecoverable,
						SubBlock{Node: node, Row: c.subRowOnNode(node, l, m)})
				}
				continue
			}
			// Read the k cheapest survivors (data first — survivors are
			// already ordered data, local parity, global parity by
			// codewordNodes).
			need := c.p.K
			if need > len(survivors) {
				need = len(survivors)
			}
			task := RepairTask{
				ReadNodes:  append([]int(nil), survivors[:need]...),
				WriteNodes: append([]int(nil), erasedHere...),
				Bytes:      subSize,
			}
			plan.Tasks = append(plan.Tasks, task)
			for _, node := range task.ReadNodes {
				plan.ReadBytes[node] += subSize
			}
			for _, node := range task.WriteNodes {
				plan.WriteBytes[node] += subSize
			}
		}
	}
	return plan, nil
}

// Survival reports, for a set of failed nodes, whether every important
// sub-stripe and every unimportant sub-stripe remains decodable under
// the codes' guaranteed fault tolerance. It is the predicate behind the
// paper's P_I / P_U reliability analysis (§3.4) and moves no data.
func (c *Code) Survival(failed []int) (importantOK, unimportantOK bool) {
	isFailed := make(map[int]bool, len(failed))
	for _, f := range failed {
		isFailed[f] = true
	}
	importantOK, unimportantOK = true, true
	for l := 0; l < c.p.H; l++ {
		for m := 0; m < c.p.H; m++ {
			erased := 0
			for _, node := range c.codewordNodes(l, m) {
				if isFailed[node] {
					erased++
				}
			}
			if c.Important(l, m) {
				if erased > c.p.R+c.p.G {
					importantOK = false
				}
			} else if erased > c.p.R {
				unimportantOK = false
			}
		}
	}
	return importantOK, unimportantOK
}
