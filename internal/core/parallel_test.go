package core

import (
	"bytes"
	"sort"
	"testing"

	"approxcode/internal/erasure"
)

func TestEncodeParallelMatchesSequential(t *testing.T) {
	for _, p := range testParams() {
		t.Run(p.Name(), func(t *testing.T) {
			c := mustNew(t, p)
			seq, err := erasure.RandomStripe(c, stripeSize(c), 41)
			if err != nil {
				t.Fatal(err)
			}
			par := make([][]byte, c.TotalShards())
			for _, dn := range c.DataNodeIndexes() {
				par[dn] = append([]byte(nil), seq[dn]...)
			}
			for _, workers := range []int{2, 4, 8} {
				work := erasure.CloneShards(par)
				if err := c.EncodeParallel(work, workers); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				for i := range seq {
					if !bytes.Equal(work[i], seq[i]) {
						t.Fatalf("workers=%d: shard %d differs", workers, i)
					}
				}
			}
		})
	}
}

func TestEncodeParallelValidation(t *testing.T) {
	c := mustNew(t, Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 2, Structure: Even})
	if err := c.EncodeParallel(make([][]byte, 2), 4); err == nil {
		t.Fatal("short stripe accepted")
	}
	shards := make([][]byte, c.TotalShards())
	if err := c.EncodeParallel(shards, 4); err == nil {
		t.Fatal("missing data accepted")
	}
}

func TestReconstructParallelMatchesSequential(t *testing.T) {
	for _, p := range testParams() {
		t.Run(p.Name(), func(t *testing.T) {
			c := mustNew(t, p)
			stripe, err := erasure.RandomStripe(c, stripeSize(c), 43)
			if err != nil {
				t.Fatal(err)
			}
			n := c.TotalShards()
			count := 0
			erasure.Combinations(n, p.R+p.G, func(idx []int) bool {
				count++
				if count > 25 {
					return false
				}
				seqWork := erasure.CloneShards(stripe)
				parWork := erasure.CloneShards(stripe)
				for _, e := range idx {
					seqWork[e], parWork[e] = nil, nil
				}
				seqRep, err := c.ReconstructReport(seqWork, Options{})
				if err != nil {
					t.Fatalf("seq %v: %v", idx, err)
				}
				parRep, err := c.ReconstructReportParallel(parWork, Options{}, 4)
				if err != nil {
					t.Fatalf("par %v: %v", idx, err)
				}
				for i := range seqWork {
					if !bytes.Equal(seqWork[i], parWork[i]) {
						t.Fatalf("pattern %v: shard %d differs", idx, i)
					}
				}
				if seqRep.ImportantOK != parRep.ImportantOK ||
					seqRep.BytesRebuilt != parRep.BytesRebuilt ||
					seqRep.BytesRead != parRep.BytesRead {
					t.Fatalf("pattern %v: reports differ: %+v vs %+v", idx, seqRep, parRep)
				}
				sortSubBlocks(seqRep.Lost)
				sortSubBlocks(parRep.Lost)
				if len(seqRep.Lost) != len(parRep.Lost) {
					t.Fatalf("pattern %v: lost lists differ", idx)
				}
				for i := range seqRep.Lost {
					if seqRep.Lost[i] != parRep.Lost[i] {
						t.Fatalf("pattern %v: lost[%d] differs", idx, i)
					}
				}
				return true
			})
		})
	}
}

func sortSubBlocks(s []SubBlock) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Node != s[j].Node {
			return s[i].Node < s[j].Node
		}
		return s[i].Row < s[j].Row
	})
}

func TestParallelWorkerFallback(t *testing.T) {
	c := mustNew(t, Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 2, Structure: Uneven})
	stripe, err := erasure.RandomStripe(c, stripeSize(c), 44)
	if err != nil {
		t.Fatal(err)
	}
	// workers <= 1 falls back to the sequential code path.
	data := make([][]byte, c.TotalShards())
	for _, dn := range c.DataNodeIndexes() {
		data[dn] = append([]byte(nil), stripe[dn]...)
	}
	if err := c.EncodeParallel(data, 1); err != nil {
		t.Fatal(err)
	}
	for i := range stripe {
		if !bytes.Equal(data[i], stripe[i]) {
			t.Fatalf("fallback encode differs at %d", i)
		}
	}
	work := erasure.CloneShards(stripe)
	work[0] = nil
	if _, err := c.ReconstructReportParallel(work, Options{}, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(work[0], stripe[0]) {
		t.Fatal("fallback reconstruct differs")
	}
}
