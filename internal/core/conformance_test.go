package core

import (
	"testing"

	"approxcode/internal/erasure/codertest"
	"approxcode/internal/parallel"
)

// TestConformance runs the shared coder conformance suite over generated
// Approximate Codes covering both structures and several input families,
// plus a forced-serial configuration (the suite's Concurrent subtest is
// what exercises a single shared *Code from many goroutines under -race).
func TestConformance(t *testing.T) {
	params := []Params{
		{Family: FamilyRS, K: 4, R: 2, G: 1, H: 2, Structure: Even},
		{Family: FamilyRS, K: 4, R: 2, G: 1, H: 2, Structure: Uneven},
		{Family: FamilyLRC, K: 4, R: 1, G: 2, H: 3, Structure: Even},
		{Family: FamilySTAR, K: 5, R: 2, G: 1, H: 2, Structure: Uneven},
		{Family: FamilyTIP, K: 5, R: 1, G: 2, H: 2, Structure: Even},
	}
	for _, p := range params {
		c, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(c.Name(), func(t *testing.T) { codertest.Run(t, c) })
	}
	serial, err := New(params[0], parallel.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Run(serial.Name()+"/serial", func(t *testing.T) { codertest.Run(t, serial) })
}
