package core

// Sub-stripe codewords touch disjoint sub-blocks, so encoding and
// repairing them is embarrassingly parallel. Since the shared striping
// engine (internal/parallel) routes Encode and ReconstructReport through
// the worker pool directly, these entry points are retained as thin
// compatibility wrappers that override the codeword fan-out width for a
// single call. Prefer passing parallel.Options to New instead.

// EncodeParallel is Encode with the per-codeword work spread over up to
// `workers` goroutines (0 = GOMAXPROCS, 1 = serial).
func (c *Code) EncodeParallel(shards [][]byte, workers int) error {
	cc := *c
	cc.par.Parallelism = workers
	return cc.Encode(shards)
}

// ReconstructReportParallel is ReconstructReport with the per-codeword
// repairs spread over up to `workers` goroutines (0 = GOMAXPROCS,
// 1 = serial). The report is identical to the sequential one.
func (c *Code) ReconstructReportParallel(shards [][]byte, opts Options, workers int) (*Report, error) {
	cc := *c
	cc.par.Parallelism = workers
	return cc.ReconstructReport(shards, opts)
}
