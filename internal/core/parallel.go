package core

import (
	"fmt"
	"runtime"
	"sync"

	"approxcode/internal/erasure"
)

// Sub-stripe codewords touch disjoint sub-blocks, so encoding and
// repairing them is embarrassingly parallel. These entry points fan the
// h*h codewords out over a bounded worker pool; with workers <= 1 they
// fall back to the sequential paths.

// EncodeParallel is Encode with the per-codeword work spread over up to
// `workers` goroutines (0 = GOMAXPROCS).
func (c *Code) EncodeParallel(shards [][]byte, workers int) error {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		return c.Encode(shards)
	}
	// Validation and parity allocation are identical to Encode.
	if len(shards) != c.TotalShards() {
		return fmt.Errorf("%w: got %d, want %d", erasure.ErrShardCount, len(shards), c.TotalShards())
	}
	size := -1
	for l := 0; l < c.p.H; l++ {
		for j := 0; j < c.p.K; j++ {
			s := shards[c.dataNode(l, j)]
			if s == nil {
				return fmt.Errorf("%s encode: %w: data node missing", c.Name(), erasure.ErrShardSize)
			}
			if size == -1 {
				size = len(s)
			} else if len(s) != size {
				return fmt.Errorf("%s encode: %w: unequal data nodes", c.Name(), erasure.ErrShardSize)
			}
		}
	}
	if size == 0 || size%c.ShardSizeMultiple() != 0 {
		return fmt.Errorf("%s encode: %w: size %d not a positive multiple of %d",
			c.Name(), erasure.ErrShardSize, size, c.ShardSizeMultiple())
	}
	for i := range shards {
		if c.Role(i) != RoleData {
			if shards[i] == nil {
				shards[i] = make([]byte, size)
			} else if len(shards[i]) != size {
				return fmt.Errorf("%s encode: %w: parity node %d", c.Name(), erasure.ErrShardSize, i)
			}
		}
	}
	type job struct{ l, m int }
	jobs := make(chan job)
	errs := make(chan error, c.p.H*c.p.H)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := c.encodeSubStripe(shards, j.l, j.m); err != nil {
					errs <- err
				}
			}
		}()
	}
	for l := 0; l < c.p.H; l++ {
		for m := 0; m < c.p.H; m++ {
			jobs <- job{l, m}
		}
	}
	close(jobs)
	wg.Wait()
	close(errs)
	return <-errs
}

// ReconstructReportParallel is ReconstructReport with the per-codeword
// repairs spread over up to `workers` goroutines (0 = GOMAXPROCS). The
// report is identical to the sequential one up to the order of Lost.
func (c *Code) ReconstructReportParallel(shards [][]byte, opts Options, workers int) (*Report, error) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		return c.ReconstructReport(shards, opts)
	}
	size, err := erasure.CheckShards(shards, c.TotalShards(), c.ShardSizeMultiple(), true)
	if err != nil {
		return nil, fmt.Errorf("%s reconstruct: %w", c.Name(), err)
	}
	erased := erasure.Erased(shards)
	rep := &Report{ImportantOK: true}
	if len(erased) == 0 {
		return rep, nil
	}
	failed := make(map[int]bool, len(erased))
	for _, e := range erased {
		failed[e] = true
		shards[e] = make([]byte, size)
	}
	type job struct{ l, m int }
	jobs := make(chan job)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards rep
		fail error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				local, err := c.repairSubStripe(shards, failed, j.l, j.m, opts, size)
				mu.Lock()
				if err != nil && fail == nil {
					fail = err
				}
				rep.Lost = append(rep.Lost, local.Lost...)
				rep.BytesRebuilt += local.BytesRebuilt
				rep.BytesRead += local.BytesRead
				if !local.ImportantOK {
					rep.ImportantOK = false
				}
				mu.Unlock()
			}
		}()
	}
	for l := 0; l < c.p.H; l++ {
		for m := 0; m < c.p.H; m++ {
			jobs <- job{l, m}
		}
	}
	close(jobs)
	wg.Wait()
	if fail != nil {
		return nil, fail
	}
	return rep, nil
}
