package core

import (
	"fmt"
	"sort"

	"approxcode/internal/erasure"
)

var _ erasure.ReadPlanner = (*Code)(nil)

// codewordPlan returns the global node indexes that must be read to
// repair codeword (l, m)'s erased members, or nil when the codeword has
// none. When the sub-coder plans reads itself (RS/LRC/XOR array codes
// all do) the plan is its minimal survivor set; otherwise every
// surviving member of the codeword is planned — still far less than the
// whole global stripe, because a codeword spans only one local stripe's
// k+r columns (plus the g global nodes when important).
func (c *Code) codewordPlan(l, m int, failed map[int]bool) ([]int, error) {
	nodes := c.codewordNodes(l, m)
	var targets []int
	for i, n := range nodes {
		if failed[n] {
			targets = append(targets, i)
		}
	}
	if len(targets) == 0 {
		return nil, nil
	}
	coder := c.local
	if c.Important(l, m) {
		coder = c.full
	}
	if rp, ok := coder.(erasure.ReadPlanner); ok {
		posPlan, err := rp.PlanRead(targets)
		if err != nil {
			return nil, fmt.Errorf("%s plan (%d,%d): %w", c.Name(), l, m, err)
		}
		plan := make([]int, len(posPlan))
		for i, pos := range posPlan {
			plan[i] = nodes[pos]
		}
		return plan, nil
	}
	if len(targets) > coder.FaultTolerance() {
		return nil, fmt.Errorf("%s plan (%d,%d): %w: %d erased",
			c.Name(), l, m, erasure.ErrTooManyErasures, len(targets))
	}
	plan := make([]int, 0, len(nodes)-len(targets))
	for _, n := range nodes {
		if !failed[n] {
			plan = append(plan, n)
		}
	}
	return plan, nil
}

// PlanRead implements erasure.ReadPlanner: the union of the per-codeword
// plans of every codeword touching an erased node. A single failed data
// node of local stripe l plans only stripe l's columns (plus globals for
// its important rows) — never the other h-1 local stripes. Patterns any
// codeword cannot repair (approximate loss) return an error wrapping
// erasure.ErrTooManyErasures; callers fall back to the full-stripe
// best-effort path.
func (c *Code) PlanRead(erased []int) ([]int, error) {
	targets, err := erasure.CheckPlanTargets(erased, c.TotalShards())
	if err != nil {
		return nil, fmt.Errorf("%s plan: %w", c.Name(), err)
	}
	if len(targets) == 0 {
		return []int{}, nil
	}
	failed := make(map[int]bool, len(targets))
	for _, e := range targets {
		failed[e] = true
	}
	need := make(map[int]bool)
	for l := 0; l < c.p.H; l++ {
		for m := 0; m < c.p.H; m++ {
			plan, err := c.codewordPlan(l, m, failed)
			if err != nil {
				return nil, err
			}
			for _, n := range plan {
				need[n] = true
			}
		}
	}
	out := make([]int, 0, len(need))
	for n := range need {
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// ReconstructErased implements erasure.ReadPlanner.
func (c *Code) ReconstructErased(shards [][]byte, erased []int) error {
	_, err := c.ReconstructErasedReport(shards, erased)
	return err
}

// ReconstructErasedReport rebuilds exactly the erased node columns from
// the shards PlanRead named, leaving unread entries untouched, and
// accounts the survivor bytes consumed (Report.BytesRead — the repair
// network traffic) and bytes rebuilt. Unlike ReconstructReport it is
// all-or-nothing: any unrecoverable codeword or absent planned shard is
// an error, and callers fall back to the full-stripe best-effort path.
func (c *Code) ReconstructErasedReport(shards [][]byte, erased []int) (*Report, error) {
	defer c.recHist.Start().Stop()
	if len(shards) != c.TotalShards() {
		return nil, fmt.Errorf("%s reconstruct erased: %w: got %d, want %d",
			c.Name(), erasure.ErrShardCount, len(shards), c.TotalShards())
	}
	targets, err := erasure.CheckPlanTargets(erased, c.TotalShards())
	if err != nil {
		return nil, fmt.Errorf("%s reconstruct erased: %w", c.Name(), err)
	}
	rep := &Report{ImportantOK: true}
	if len(targets) == 0 {
		return rep, nil
	}
	failed := make(map[int]bool, len(targets))
	size := -1
	for _, e := range targets {
		failed[e] = true
	}
	for i, s := range shards {
		if failed[i] || len(s) == 0 {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return nil, fmt.Errorf("%s reconstruct erased: %w: unequal shard sizes",
				c.Name(), erasure.ErrShardSize)
		}
	}
	if size <= 0 || size%c.ShardSizeMultiple() != 0 {
		return nil, fmt.Errorf("%s reconstruct erased: %w: size %d not a positive multiple of %d",
			c.Name(), erasure.ErrShardSize, size, c.ShardSizeMultiple())
	}
	for _, e := range targets {
		shards[e] = make([]byte, size)
	}
	subSize := size / c.p.H
	for l := 0; l < c.p.H; l++ {
		for m := 0; m < c.p.H; m++ {
			read, rebuilt, err := c.repairSubStripePlanned(shards, failed, l, m)
			if err != nil {
				return nil, err
			}
			rep.BytesRead += int64(read * subSize)
			rep.BytesRebuilt += int64(rebuilt * subSize)
		}
	}
	return rep, nil
}

// repairSubStripePlanned repairs codeword (l, m)'s erased sub-blocks
// from exactly the planned survivors, returning the number of survivor
// sub-blocks read and sub-blocks rebuilt.
func (c *Code) repairSubStripePlanned(shards [][]byte, failed map[int]bool, l, m int) (read, rebuilt int, err error) {
	nodes := c.codewordNodes(l, m)
	var targets []int
	for i, n := range nodes {
		if failed[n] {
			targets = append(targets, i)
		}
	}
	if len(targets) == 0 {
		return 0, 0, nil
	}
	coder := c.local
	if c.Important(l, m) {
		coder = c.full
	}
	cw := make([][]byte, len(nodes))
	for i, n := range nodes {
		if failed[n] || shards[n] == nil {
			continue
		}
		cw[i] = sub(shards[n], c.subRowOnNode(n, l, m), c.p.H)
	}
	if rp, ok := coder.(erasure.ReadPlanner); ok {
		posPlan, err := rp.PlanRead(targets)
		if err != nil {
			return 0, 0, fmt.Errorf("%s reconstruct erased (%d,%d): %w", c.Name(), l, m, err)
		}
		for _, pos := range posPlan {
			if cw[pos] == nil {
				return 0, 0, fmt.Errorf("%s reconstruct erased (%d,%d): %w: planned node %d absent",
					c.Name(), l, m, erasure.ErrShardSize, nodes[pos])
			}
		}
		if err := rp.ReconstructErased(cw, targets); err != nil {
			return 0, 0, fmt.Errorf("%s reconstruct erased (%d,%d): %w", c.Name(), l, m, err)
		}
		read = len(posPlan)
	} else {
		for i, n := range nodes {
			if !failed[n] {
				if cw[i] == nil {
					return 0, 0, fmt.Errorf("%s reconstruct erased (%d,%d): %w: planned node %d absent",
						c.Name(), l, m, erasure.ErrShardSize, n)
				}
				read++
			}
		}
		if err := coder.Reconstruct(cw); err != nil {
			return 0, 0, fmt.Errorf("%s reconstruct erased (%d,%d): %w", c.Name(), l, m, err)
		}
	}
	for _, pos := range targets {
		n := nodes[pos]
		copy(sub(shards[n], c.subRowOnNode(n, l, m), c.p.H), cw[pos])
		rebuilt++
	}
	return read, rebuilt, nil
}

// PlanSubBlockRead returns the sub-blocks a degraded read of sub-block
// (node, row) must fetch, given the set of failed nodes. A live target
// plans only itself; a failed one plans its owning codeword's minimal
// survivor set. This is the segment-read analogue of PlanRead: a
// storage layer with partial-column reads moves only these sub-blocks.
func (c *Code) PlanSubBlockRead(node, row int, failedNodes []int) ([]SubBlock, error) {
	l, m, err := c.locateSubStripe(node, row)
	if err != nil {
		return nil, err
	}
	failed := make(map[int]bool, len(failedNodes))
	for _, f := range failedNodes {
		failed[f] = true
	}
	if !failed[node] {
		return []SubBlock{{Node: node, Row: row}}, nil
	}
	nodes := c.codewordNodes(l, m)
	var targets []int
	pos := -1
	for i, n := range nodes {
		if n == node {
			pos = i
		}
		if failed[n] {
			targets = append(targets, i)
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("core: node %d not part of sub-stripe (%d,%d)", node, l, m)
	}
	coder := c.local
	if c.Important(l, m) {
		coder = c.full
	}
	var posPlan []int
	if rp, ok := coder.(erasure.ReadPlanner); ok {
		if posPlan, err = rp.PlanRead(targets); err != nil {
			return nil, fmt.Errorf("%s plan sub-block (%d,%d): %w", c.Name(), node, row, err)
		}
	} else {
		if len(targets) > coder.FaultTolerance() {
			return nil, fmt.Errorf("%s plan sub-block (%d,%d): %w",
				c.Name(), node, row, erasure.ErrTooManyErasures)
		}
		for i, n := range nodes {
			if !failed[n] {
				posPlan = append(posPlan, i)
			}
		}
	}
	out := make([]SubBlock, len(posPlan))
	for i, p := range posPlan {
		n := nodes[p]
		out[i] = SubBlock{Node: n, Row: c.subRowOnNode(n, l, m)}
	}
	return out, nil
}

// ReconstructSubBlock decodes sub-block (node, row) from the planned
// sub-block contents fetched per PlanSubBlockRead, given the same
// failed-node set. The returned slice is freshly allocated (or the
// provided block itself for a live target).
func (c *Code) ReconstructSubBlock(subs map[SubBlock][]byte, node, row int, failedNodes []int) ([]byte, error) {
	l, m, err := c.locateSubStripe(node, row)
	if err != nil {
		return nil, err
	}
	failed := make(map[int]bool, len(failedNodes))
	for _, f := range failedNodes {
		failed[f] = true
	}
	if !failed[node] {
		blk, ok := subs[SubBlock{Node: node, Row: row}]
		if !ok {
			return nil, fmt.Errorf("core: sub-block (%d,%d) not provided", node, row)
		}
		return blk, nil
	}
	nodes := c.codewordNodes(l, m)
	cw := make([][]byte, len(nodes))
	var targets []int
	pos := -1
	size := -1
	for i, n := range nodes {
		if n == node {
			pos = i
		}
		if failed[n] {
			targets = append(targets, i)
			continue
		}
		blk, ok := subs[SubBlock{Node: n, Row: c.subRowOnNode(n, l, m)}]
		if !ok {
			continue
		}
		if size == -1 {
			size = len(blk)
		} else if len(blk) != size {
			return nil, fmt.Errorf("%s sub-block (%d,%d): %w: unequal sub-block sizes",
				c.Name(), node, row, erasure.ErrShardSize)
		}
		cw[i] = blk
	}
	if pos < 0 {
		return nil, fmt.Errorf("core: node %d not part of sub-stripe (%d,%d)", node, l, m)
	}
	coder := c.local
	if c.Important(l, m) {
		coder = c.full
	}
	if rp, ok := coder.(erasure.ReadPlanner); ok {
		if err := rp.ReconstructErased(cw, targets); err != nil {
			return nil, fmt.Errorf("%s sub-block (%d,%d): %w", c.Name(), node, row, err)
		}
		return cw[pos], nil
	}
	if err := coder.Reconstruct(cw); err != nil {
		return nil, fmt.Errorf("%s sub-block (%d,%d): %w", c.Name(), node, row, err)
	}
	return cw[pos], nil
}
