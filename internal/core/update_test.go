package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"approxcode/internal/erasure"
)

func TestUpdateKeepsStripeConsistent(t *testing.T) {
	// After any incremental update, Verify must pass and the stripe must
	// byte-match a full re-encode. Every family, every structure, every
	// (node, row).
	for _, p := range testParams() {
		t.Run(p.Name(), func(t *testing.T) {
			c := mustNew(t, p)
			stripe, err := erasure.RandomStripe(c, stripeSize(c), 17)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(18))
			subSize := stripeSize(c) / p.H
			for _, node := range c.DataNodeIndexes() {
				for m := 0; m < p.H; m++ {
					newData := make([]byte, subSize)
					rng.Read(newData)
					res, err := c.Update(stripe, node, m, newData)
					if err != nil {
						t.Fatalf("update (%d,%d): %v", node, m, err)
					}
					if res.IOWrites < 2 {
						t.Fatalf("update (%d,%d): implausible IO count %d", node, m, res.IOWrites)
					}
					if ok, err := c.Verify(stripe); err != nil || !ok {
						t.Fatalf("stripe inconsistent after update (%d,%d): ok=%v err=%v", node, m, ok, err)
					}
					if !bytes.Equal(sub(stripe[node], m, p.H), newData) {
						t.Fatalf("data sub-block not written (%d,%d)", node, m)
					}
				}
			}
			// Cross-check against a full re-encode of the final data.
			fresh := make([][]byte, c.TotalShards())
			for _, dn := range c.DataNodeIndexes() {
				fresh[dn] = append([]byte(nil), stripe[dn]...)
			}
			if err := c.Encode(fresh); err != nil {
				t.Fatal(err)
			}
			for i := range fresh {
				if !bytes.Equal(fresh[i], stripe[i]) {
					t.Fatalf("incrementally updated shard %d differs from re-encode", i)
				}
			}
		})
	}
}

func TestUpdateIOCountMatchesTable2ForRSFamilies(t *testing.T) {
	// For the GF-matrix families the average measured write I/O must
	// equal the paper's 1 + r + g/h exactly.
	for _, p := range []Params{
		{Family: FamilyRS, K: 4, R: 1, G: 2, H: 3, Structure: Even},
		{Family: FamilyRS, K: 4, R: 2, G: 1, H: 2, Structure: Uneven},
		{Family: FamilyLRC, K: 3, R: 1, G: 2, H: 2, Structure: Even},
	} {
		c := mustNew(t, p)
		stripe, err := erasure.RandomStripe(c, stripeSize(c), 19)
		if err != nil {
			t.Fatal(err)
		}
		newData := make([]byte, stripeSize(c)/p.H)
		total, count := 0, 0
		for _, node := range c.DataNodeIndexes() {
			for m := 0; m < p.H; m++ {
				res, err := c.Update(stripe, node, m, newData)
				if err != nil {
					t.Fatal(err)
				}
				total += res.IOWrites
				count++
			}
		}
		want := 1 + float64(p.R) + float64(p.G)/float64(p.H)
		if got := float64(total) / float64(count); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: measured avg write I/O %v, Table 2 says %v", p.Name(), got, want)
		}
	}
}

func TestUpdateTouchesGlobalsOnlyWhenImportant(t *testing.T) {
	p := Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 3, Structure: Uneven}
	c := mustNew(t, p)
	stripe, err := erasure.RandomStripe(c, stripeSize(c), 20)
	if err != nil {
		t.Fatal(err)
	}
	newData := make([]byte, stripeSize(c)/p.H)
	// Important write (stripe 0): touches r locals + g globals.
	res, err := c.Update(stripe, c.dataNode(0, 0), 1, newData)
	if err != nil {
		t.Fatal(err)
	}
	if res.IOWrites != 1+p.R+p.G {
		t.Fatalf("important write I/O %d want %d", res.IOWrites, 1+p.R+p.G)
	}
	globals := 0
	for _, n := range res.TouchedNodes {
		if c.Role(n) == RoleGlobalParity {
			globals++
		}
	}
	if globals != p.G {
		t.Fatalf("important write touched %d globals, want %d", globals, p.G)
	}
	// Unimportant write (stripe 1): locals only.
	res, err = c.Update(stripe, c.dataNode(1, 0), 1, newData)
	if err != nil {
		t.Fatal(err)
	}
	if res.IOWrites != 1+p.R {
		t.Fatalf("unimportant write I/O %d want %d", res.IOWrites, 1+p.R)
	}
	for _, n := range res.TouchedNodes {
		if c.Role(n) == RoleGlobalParity {
			t.Fatal("unimportant write touched a global parity")
		}
	}
}

func TestUpdateValidation(t *testing.T) {
	p := Params{Family: FamilyRS, K: 3, R: 1, G: 2, H: 2, Structure: Even}
	c := mustNew(t, p)
	stripe, err := erasure.RandomStripe(c, stripeSize(c), 21)
	if err != nil {
		t.Fatal(err)
	}
	good := make([]byte, stripeSize(c)/p.H)
	if _, err := c.Update(stripe, c.parityNode(0, 0), 0, good); err == nil {
		t.Fatal("parity node accepted")
	}
	if _, err := c.Update(stripe, 0, 9, good); err == nil {
		t.Fatal("bad row accepted")
	}
	if _, err := c.Update(stripe, 0, 0, good[:1]); err == nil {
		t.Fatal("short data accepted")
	}
	work := erasure.CloneShards(stripe)
	work[1] = nil
	if _, err := c.Update(work, 0, 0, good); err == nil {
		t.Fatal("degraded stripe accepted")
	}
}

func TestXorUpdateWriteAmplificationMatchesPlans(t *testing.T) {
	// For APPR.STAR the number of touched parity *columns* per update is
	// r (+g when important); the element-level amplification lives in
	// costmodel and xorcode.AverageWriteCost.
	p := Params{Family: FamilySTAR, K: 5, R: 2, G: 1, H: 2, Structure: Uneven}
	c := mustNew(t, p)
	stripe, err := erasure.RandomStripe(c, stripeSize(c), 22)
	if err != nil {
		t.Fatal(err)
	}
	newData := make([]byte, stripeSize(c)/p.H)
	res, err := c.Update(stripe, c.dataNode(0, 0), 0, newData)
	if err != nil {
		t.Fatal(err)
	}
	if res.IOWrites != 1+p.R+p.G {
		t.Fatalf("important STAR write I/O %d want %d", res.IOWrites, 1+p.R+p.G)
	}
	if ok, _ := c.Verify(stripe); !ok {
		t.Fatal("stripe inconsistent after STAR update")
	}
}
