package tier

import (
	"sort"
	"time"
)

// Migrator is the store-side surface the manager drives. The store
// implements it; keeping the interface here lets the policy loop be
// tested against a fake without importing the store.
type Migrator interface {
	// ObjectTier reports an object's current tier (false if unknown).
	ObjectTier(name string) (Level, bool)
	// MigrateObject re-encodes the object's redundancy to the target
	// tier. It must be safe to call concurrently with reads and must
	// return an error (not block) when migration is temporarily
	// impossible, e.g. during a node failure.
	MigrateObject(name string, to Level) error
}

// Manager is the background re-encoder: each tick it samples the
// tracker, classifies the active set under the policy, and migrates
// objects whose current tier disagrees. Migration failures are
// reported to OnError and retried naturally on the next tick.
type Manager struct {
	Tracker *Tracker
	Policy  Policy
	Store   Migrator
	// Interval between ticks for Start (default 1s).
	Interval time.Duration
	// OnError, when set, observes migration failures (the manager
	// itself only skips and retries next tick).
	OnError func(name string, to Level, err error)
}

// Tick runs one evaluation pass and returns how many migrations
// succeeded. Deterministic given the tracker state: objects are
// visited in sorted-name order.
func (m *Manager) Tick() int {
	if m.Store == nil {
		return 0
	}
	want := m.Policy.Classify(m.Tracker.Sample())
	names := make([]string, 0, len(want))
	for n := range want {
		names = append(names, n)
	}
	sort.Strings(names)
	migrated := 0
	for _, name := range names {
		cur, ok := m.Store.ObjectTier(name)
		if !ok {
			m.Tracker.Forget(name)
			continue
		}
		to := want[name]
		if cur == to {
			continue
		}
		if err := m.Store.MigrateObject(name, to); err != nil {
			if m.OnError != nil {
				m.OnError(name, to, err)
			}
			continue
		}
		migrated++
	}
	return migrated
}

// Start runs Tick on the configured interval in a goroutine and
// returns a stop function that halts it and waits for the in-flight
// tick to finish.
func (m *Manager) Start() (stop func()) {
	interval := m.Interval
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				m.Tick()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
