package tier

import (
	"container/list"
	"hash/maphash"
	"sync"

	"approxcode/internal/obs"
)

// cacheShards spreads the LRU over independent locks so concurrent
// readers of different segments never serialize on one mutex.
const cacheShards = 16

// CacheMetrics are the obs handles a Cache reports into. All fields
// are optional: nil handles are no-ops (obs metrics are nil-safe).
type CacheMetrics struct {
	Hits, Misses, Evictions *obs.Counter
	Bytes                   *obs.Gauge
}

// Cache is a sharded, byte-capped LRU over decoded segment payloads.
// Values are copied on both insert and lookup, so a cached entry can
// never alias a caller's buffer (or a recycled pool buffer) and a
// returned slice is the caller's to mutate.
//
// All methods are safe on a nil *Cache, so a disabled cache costs one
// branch.
type Cache struct {
	metrics  CacheMetrics
	seed     maphash.Seed
	capacity int64 // per shard
	shards   [cacheShards]cacheShard
}

type cacheShard struct {
	mu    sync.Mutex
	bytes int64
	lru   *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewCache returns a cache bounded to roughly capacity bytes of cached
// payload (split evenly across shards). capacity <= 0 returns nil — a
// disabled cache.
func NewCache(capacity int64, m CacheMetrics) *Cache {
	if capacity <= 0 {
		return nil
	}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	c := &Cache{metrics: m, seed: maphash.MakeSeed(), capacity: per}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)%cacheShards]
}

// Get returns a copy of the cached payload for key, if present,
// promoting it to most-recently-used.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		c.metrics.Misses.Inc()
		return nil, false
	}
	sh.lru.MoveToFront(el)
	out := append([]byte(nil), el.Value.(*cacheEntry).data...)
	sh.mu.Unlock()
	c.metrics.Hits.Inc()
	return out, true
}

// Put inserts (or refreshes) a payload copy under key, evicting
// least-recently-used entries until the shard fits its byte budget.
// Payloads larger than a shard's whole budget are not cached.
func (c *Cache) Put(key string, data []byte) {
	if c == nil || int64(len(data)) > c.capacity {
		return
	}
	cp := append([]byte(nil), data...)
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		e := el.Value.(*cacheEntry)
		delta := int64(len(cp)) - int64(len(e.data))
		e.data = cp
		sh.bytes += delta
		c.metrics.Bytes.Add(delta)
		sh.lru.MoveToFront(el)
	} else {
		sh.items[key] = sh.lru.PushFront(&cacheEntry{key: key, data: cp})
		sh.bytes += int64(len(cp))
		c.metrics.Bytes.Add(int64(len(cp)))
	}
	for sh.bytes > c.capacity {
		c.evictOldest(sh)
	}
	sh.mu.Unlock()
}

// evictOldest removes the shard's LRU entry; the shard lock is held.
func (c *Cache) evictOldest(sh *cacheShard) {
	el := sh.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	sh.lru.Remove(el)
	delete(sh.items, e.key)
	sh.bytes -= int64(len(e.data))
	c.metrics.Bytes.Add(-int64(len(e.data)))
	c.metrics.Evictions.Inc()
}

// Purge drops every entry — the blunt invalidation hammer for events
// that may change many objects at once (FailNodes).
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n := sh.lru.Len()
		freed := sh.bytes
		sh.lru.Init()
		sh.items = make(map[string]*list.Element)
		sh.bytes = 0
		sh.mu.Unlock()
		c.metrics.Bytes.Add(-freed)
		c.metrics.Evictions.Add(int64(n))
	}
}

// Bytes returns the cached payload bytes currently held.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += sh.bytes
		sh.mu.Unlock()
	}
	return total
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}
