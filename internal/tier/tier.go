// Package tier implements popularity-adaptive redundancy tiering for
// the store: per-object access tracking with EWMA-decayed rates, a
// policy engine that classifies objects hot/warm/cold under a
// Zipf-friendly threshold scheme, a bounded decoded-segment read cache,
// and a background manager that drives tier migrations through a
// Migrator (the store). The paper's premise — video popularity should
// drive redundancy cost — maps to: hot objects carry replicas so reads
// skip decode entirely, warm objects keep the full APPR layout, and
// cold objects shed their global parity for a low-overhead locally
// repairable code.
//
// The package depends only on internal/obs, so the store can import it
// without a cycle.
package tier

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Level is an object's redundancy tier. The zero value is Warm — the
// full APPR layout every object starts in — so objects restored from
// pre-tiering snapshots decode to the correct tier for free.
type Level int

// Tier levels, ordered by storage cost at rest (Rank orders them by
// hotness instead).
const (
	// Warm keeps the full APPR layout: data + local + global parity.
	Warm Level = iota
	// Hot adds full replicas of the data columns on top of the APPR
	// layout, so healthy and degraded reads alike can skip decode.
	Hot
	// Cold drops the global parity columns, keeping only the local
	// (K+R) protection — the low-overhead approximate tier.
	Cold
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Warm:
		return "warm"
	case Hot:
		return "hot"
	case Cold:
		return "cold"
	default:
		return "unknown"
	}
}

// Rank orders levels by hotness: Cold < Warm < Hot. A migration to a
// higher rank is a promotion.
func (l Level) Rank() int {
	switch l {
	case Cold:
		return 0
	case Hot:
		return 2
	default:
		return 1
	}
}

// Valid reports whether l names a known tier.
func (l Level) Valid() bool { return l == Warm || l == Hot || l == Cold }

// trackEntry is one object's access state: a lock-free touch counter
// the read paths bump, and the decayed rate only Sample touches.
type trackEntry struct {
	touches atomic.Int64
	// rateBits holds math.Float64bits of the EWMA rate; written only by
	// Sample (atomically, so concurrent Samples stay race-free).
	rateBits atomic.Uint64
}

// Tracker counts per-object accesses without locks on the read path:
// Touch is a map load plus one atomic add. Sample folds the counts
// into exponentially decayed rates — popularity with memory, so a
// briefly idle hot object does not demote instantly, while a spike on
// a cold one does not promote it forever.
//
// All methods are safe on a nil Tracker (no-ops), so callers can wire
// it unconditionally.
type Tracker struct {
	m sync.Map // object name -> *trackEntry
	// decay is the multiplier applied to the running rate per Sample.
	decay float64
}

// NewTracker returns a tracker whose rates decay by the given factor
// (0 < decay < 1) each Sample; out-of-range values default to 0.5.
func NewTracker(decay float64) *Tracker {
	if decay <= 0 || decay >= 1 {
		decay = 0.5
	}
	return &Tracker{decay: decay}
}

// Touch records one access. Lock-free after the first touch of a name.
func (t *Tracker) Touch(name string) {
	if t == nil {
		return
	}
	if e, ok := t.m.Load(name); ok {
		e.(*trackEntry).touches.Add(1)
		return
	}
	e, _ := t.m.LoadOrStore(name, &trackEntry{})
	e.(*trackEntry).touches.Add(1)
}

// Sample drains the touch counters into the decayed rates and returns
// a snapshot: rate' = rate*decay + touches. Entries whose rate decays
// below a small floor with no fresh touches are dropped, bounding the
// tracker to the recently active set.
func (t *Tracker) Sample() map[string]float64 {
	if t == nil {
		return nil
	}
	out := make(map[string]float64)
	t.m.Range(func(k, v any) bool {
		e := v.(*trackEntry)
		n := e.touches.Swap(0)
		rate := math.Float64frombits(e.rateBits.Load())*t.decay + float64(n)
		if n == 0 && rate < 1e-3 {
			t.m.Delete(k)
			return true
		}
		e.rateBits.Store(math.Float64bits(rate))
		out[k.(string)] = rate
		return true
	})
	return out
}

// Forget drops an object's tracking state (e.g. after deletion).
func (t *Tracker) Forget(name string) {
	if t != nil {
		t.m.Delete(name)
	}
}

// Policy classifies objects into tiers from their decayed access
// rates. The scheme is Zipf-friendly: under a skewed popularity
// distribution the head is small, so hot membership is a capped
// top-by-rate set rather than a bare threshold — a global traffic
// surge cannot promote the whole keyspace to replication.
type Policy struct {
	// MaxHot caps the hot set size (0 disables hot promotion).
	MaxHot int
	// HotMinRate is the minimum decayed rate to qualify for hot.
	HotMinRate float64
	// ColdMaxRate demotes objects at or below this rate to cold.
	ColdMaxRate float64
}

// Classify maps each object to its desired tier: the top MaxHot
// objects by rate (at or above HotMinRate) are hot, objects at or
// below ColdMaxRate are cold, the rest warm. Ties break by name so
// the classification is deterministic.
func (p Policy) Classify(rates map[string]float64) map[string]Level {
	names := make([]string, 0, len(rates))
	for n := range rates {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		ri, rj := rates[names[i]], rates[names[j]]
		if ri != rj {
			return ri > rj
		}
		return names[i] < names[j]
	})
	out := make(map[string]Level, len(names))
	hot := 0
	for _, n := range names {
		r := rates[n]
		switch {
		case hot < p.MaxHot && r >= p.HotMinRate && p.HotMinRate > 0:
			out[n] = Hot
			hot++
		case r <= p.ColdMaxRate:
			out[n] = Cold
		default:
			out[n] = Warm
		}
	}
	return out
}
