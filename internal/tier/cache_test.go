package tier

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"approxcode/internal/obs"
)

func cacheMetrics(reg *obs.Registry) CacheMetrics {
	return CacheMetrics{
		Hits:      reg.Counter("store_cache_hits_total"),
		Misses:    reg.Counter("store_cache_misses_total"),
		Evictions: reg.Counter("store_cache_evictions_total"),
		Bytes:     reg.Gauge("store_cache_bytes"),
	}
}

func TestCacheHitMissCopySemantics(t *testing.T) {
	reg := obs.NewRegistry(true)
	m := cacheMetrics(reg)
	c := NewCache(1<<20, m)
	src := []byte("payload-bytes")
	c.Put("k", src)
	src[0] = 'X' // caller keeps mutating its buffer: cache must not see it
	got, ok := c.Get("k")
	if !ok || !bytes.Equal(got, []byte("payload-bytes")) {
		t.Fatalf("get = %q, %v", got, ok)
	}
	got[1] = 'Y' // mutating the returned copy must not poison the cache
	again, _ := c.Get("k")
	if !bytes.Equal(again, []byte("payload-bytes")) {
		t.Fatalf("cache entry aliased to returned slice: %q", again)
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("phantom hit")
	}
	if m.Hits.Value() != 2 || m.Misses.Value() != 1 {
		t.Fatalf("hits=%d misses=%d", m.Hits.Value(), m.Misses.Value())
	}
	if m.Bytes.Value() != int64(len("payload-bytes")) || c.Bytes() != m.Bytes.Value() {
		t.Fatalf("bytes gauge %d vs %d", m.Bytes.Value(), c.Bytes())
	}
}

func TestCacheEviction(t *testing.T) {
	reg := obs.NewRegistry(true)
	m := cacheMetrics(reg)
	// Per-shard budget = 4 KiB/16 = 256 bytes: three 100-byte entries
	// into one shard must evict the oldest.
	c := NewCache(4096, m)
	sh := c.shard("x")
	keys := make([]string, 0, 3)
	for i := 0; len(keys) < 3 && i < 10000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shard(k) == sh {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		c.Put(k, make([]byte, 100))
	}
	if m.Evictions.Value() == 0 {
		t.Fatal("no evictions at 3x100 bytes into a 256-byte shard")
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(keys[2]); !ok {
		t.Fatal("MRU entry evicted")
	}
	if sh.bytes > c.capacity {
		t.Fatalf("shard over budget: %d > %d", sh.bytes, c.capacity)
	}
	// Oversized payloads are refused outright, not cached-then-evicted.
	c.Put("huge", make([]byte, 10000))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized payload cached")
	}
}

func TestCachePurgeAndNil(t *testing.T) {
	reg := obs.NewRegistry(true)
	m := cacheMetrics(reg)
	c := NewCache(1<<20, m)
	for i := 0; i < 32; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("data"))
	}
	if c.Len() != 32 {
		t.Fatalf("len = %d", c.Len())
	}
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 || m.Bytes.Value() != 0 {
		t.Fatalf("purge left len=%d bytes=%d gauge=%d", c.Len(), c.Bytes(), m.Bytes.Value())
	}

	var nilC *Cache
	nilC.Put("k", []byte("v"))
	if _, ok := nilC.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	nilC.Purge()
	if nilC.Bytes() != 0 || nilC.Len() != 0 {
		t.Fatal("nil cache accounting")
	}
	if NewCache(0, m) != nil {
		t.Fatal("zero-capacity cache must be nil (disabled)")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(1<<16, CacheMetrics{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%64)
				want := []byte(k)
				c.Put(k, want)
				if got, ok := c.Get(k); ok && !bytes.Equal(got, want) {
					t.Errorf("key %q returned %q", k, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
