package tier

import (
	"fmt"
	"sync"
	"testing"
)

func TestTrackerDecayAndDrop(t *testing.T) {
	tr := NewTracker(0.5)
	for i := 0; i < 8; i++ {
		tr.Touch("a")
	}
	tr.Touch("b")
	rates := tr.Sample()
	if rates["a"] != 8 || rates["b"] != 1 {
		t.Fatalf("first sample: %v", rates)
	}
	// No fresh touches: rates halve each sample.
	rates = tr.Sample()
	if rates["a"] != 4 || rates["b"] != 0.5 {
		t.Fatalf("decayed sample: %v", rates)
	}
	// Touches accumulate on top of the decayed rate.
	tr.Touch("a")
	rates = tr.Sample()
	if rates["a"] != 3 { // 4*0.5 + 1
		t.Fatalf("decay+touch: %v", rates)
	}
	// An idle entry decays below the floor and is dropped.
	for i := 0; i < 64; i++ {
		tr.Sample()
	}
	if rates := tr.Sample(); len(rates) != 0 {
		t.Fatalf("idle entries not dropped: %v", rates)
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.Touch("x")
	tr.Forget("x")
	if got := tr.Sample(); got != nil {
		t.Fatalf("nil tracker sample = %v", got)
	}
}

func TestTrackerConcurrentTouch(t *testing.T) {
	tr := NewTracker(0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Touch(fmt.Sprintf("obj-%d", i%10))
			}
		}(g)
	}
	wg.Wait()
	rates := tr.Sample()
	var total float64
	for _, r := range rates {
		total += r
	}
	if total != 8000 {
		t.Fatalf("lost touches: total rate %v want 8000", total)
	}
}

func TestPolicyClassify(t *testing.T) {
	p := Policy{MaxHot: 2, HotMinRate: 10, ColdMaxRate: 1}
	rates := map[string]float64{
		"a": 100, // hot (top)
		"b": 50,  // hot (2nd)
		"c": 40,  // warm: above cold, hot set full
		"d": 1,   // cold: at threshold
		"e": 0.2, // cold
		"f": 5,   // warm
	}
	want := map[string]Level{"a": Hot, "b": Hot, "c": Warm, "d": Cold, "e": Cold, "f": Warm}
	got := p.Classify(rates)
	for n, lvl := range want {
		if got[n] != lvl {
			t.Errorf("classify %q = %v, want %v", n, got[n], lvl)
		}
	}
	// MaxHot caps promotion even when more objects clear HotMinRate.
	got = Policy{MaxHot: 1, HotMinRate: 10, ColdMaxRate: 1}.Classify(rates)
	if got["a"] != Hot || got["b"] != Warm {
		t.Fatalf("hot cap not applied: %v", got)
	}
	// HotMinRate floors promotion below the cap.
	got = Policy{MaxHot: 10, HotMinRate: 60, ColdMaxRate: 1}.Classify(rates)
	if got["a"] != Hot || got["b"] != Warm {
		t.Fatalf("hot rate floor not applied: %v", got)
	}
}

func TestLevelStringsAndRank(t *testing.T) {
	if Warm.String() != "warm" || Hot.String() != "hot" || Cold.String() != "cold" {
		t.Fatal("level strings")
	}
	if !(Cold.Rank() < Warm.Rank() && Warm.Rank() < Hot.Rank()) {
		t.Fatal("rank ordering")
	}
	if Level(42).Valid() || !Warm.Valid() {
		t.Fatal("validity")
	}
	var zero Level
	if zero != Warm {
		t.Fatal("zero value must be Warm for snapshot compatibility")
	}
}

// fakeMigrator tracks tiers in a map.
type fakeMigrator struct {
	mu    sync.Mutex
	tiers map[string]Level
	fail  map[string]error
	calls int
}

func (f *fakeMigrator) ObjectTier(name string) (Level, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	l, ok := f.tiers[name]
	return l, ok
}

func (f *fakeMigrator) MigrateObject(name string, to Level) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if err := f.fail[name]; err != nil {
		return err
	}
	f.tiers[name] = to
	return nil
}

func TestManagerTick(t *testing.T) {
	tr := NewTracker(0.5)
	fm := &fakeMigrator{tiers: map[string]Level{"hot1": Warm, "cold1": Warm, "gone": Warm}}
	m := &Manager{
		Tracker: tr,
		Policy:  Policy{MaxHot: 1, HotMinRate: 5, ColdMaxRate: 0.5},
		Store:   fm,
	}
	for i := 0; i < 20; i++ {
		tr.Touch("hot1")
	}
	tr.Touch("cold1") // rate 1 now; decays under 0.5 after two samples
	tr.Touch("missing")
	if n := m.Tick(); n != 1 {
		t.Fatalf("tick migrated %d, want 1 (hot1 promotion)", n)
	}
	if l, _ := fm.ObjectTier("hot1"); l != Hot {
		t.Fatalf("hot1 = %v", l)
	}
	// Next ticks decay cold1 to <= 0.5 => demotion to cold.
	m.Tick()
	m.Tick()
	if l, _ := fm.ObjectTier("cold1"); l != Cold {
		t.Fatalf("cold1 = %v after decay", l)
	}
	// Unknown objects are forgotten, not retried forever.
	if _, ok := tr.m.Load("missing"); ok {
		t.Fatal("unknown object not forgotten")
	}
}

func TestManagerErrorsRetry(t *testing.T) {
	tr := NewTracker(0.5)
	fm := &fakeMigrator{
		tiers: map[string]Level{"a": Warm},
		fail:  map[string]error{"a": fmt.Errorf("unavailable")},
	}
	var reported int
	m := &Manager{
		Tracker: tr,
		Policy:  Policy{MaxHot: 1, HotMinRate: 1},
		Store:   fm,
		OnError: func(string, Level, error) { reported++ },
	}
	for i := 0; i < 4; i++ {
		tr.Touch("a")
	}
	if n := m.Tick(); n != 0 || reported != 1 {
		t.Fatalf("tick = %d migrations, %d errors", n, reported)
	}
	// Failure clears: the next tick retries the same desired tier.
	fm.mu.Lock()
	fm.fail = nil
	fm.mu.Unlock()
	if n := m.Tick(); n != 1 {
		t.Fatalf("retry tick = %d", n)
	}
}
