package approxcode

// testing.B benchmarks, one family per table/figure of the paper's
// evaluation. `go test -bench=. -benchmem` regenerates measured numbers;
// cmd/apprbench prints the same experiments as formatted reports.

import (
	"fmt"
	"testing"

	"approxcode/internal/bench"
	"approxcode/internal/cluster"
	"approxcode/internal/core"
	"approxcode/internal/erasure"
	"approxcode/internal/reliability"
	"approxcode/internal/video"
)

const benchShard = 64 * 1024

// --- Table 2 / Table 3 / Fig 7 / Fig 8: analytic models -------------------

func BenchmarkTable2Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(bench.Table2(5, 4)); got != 8 {
			b.Fatalf("table2 rows = %d", got)
		}
	}
}

func BenchmarkTable3StorageImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(bench.Table3()); got != 4 {
			b.Fatalf("table3 rows = %d", got)
		}
	}
}

func BenchmarkFig7StorageOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, h := range bench.PaperHs {
			if fig := bench.Fig7(h); len(fig.Series) != 3 {
				b.Fatal("bad fig7")
			}
		}
	}
}

func BenchmarkFig8SingleWriteCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, h := range bench.PaperHs {
			if fig := bench.Fig8(h); len(fig.Series) != 4 {
				b.Fatal("bad fig8")
			}
		}
	}
}

// --- Fig 9: encoding time --------------------------------------------------

func benchEncode(b *testing.B, c erasure.Coder) {
	b.Helper()
	size := bench.AlignSize(benchShard, c.ShardSizeMultiple())
	stripe, err := erasure.RandomStripe(c, size, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(c.DataShards() * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(stripe); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncoding(b *testing.B) {
	for _, fam := range bench.Families {
		fam := fam
		b.Run(fmt.Sprintf("baseline/%s/k=5", fam), func(b *testing.B) {
			c, err := bench.BuildBaseline(fam, 5, 4)
			if err != nil {
				b.Fatal(err)
			}
			benchEncode(b, c)
		})
		for _, h := range bench.PaperHs {
			h := h
			b.Run(fmt.Sprintf("appr/%s/k=5/h=%d", fam, h), func(b *testing.B) {
				c, err := bench.BuildAppr(fam, 5, h, core.Uneven)
				if err != nil {
					b.Fatal(err)
				}
				benchEncode(b, c)
			})
		}
	}
}

// --- Table 4 row 2 + Figs 10, 11: decoding time ----------------------------

func benchDecode(b *testing.B, c erasure.Coder, failures int) {
	b.Helper()
	size := bench.AlignSize(benchShard, c.ShardSizeMultiple())
	stripe, err := erasure.RandomStripe(c, size, 2)
	if err != nil {
		b.Fatal(err)
	}
	failed := bench.FailureNodes(c, failures)
	appr, isAppr := c.(*core.Code)
	b.SetBytes(int64(failures * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := erasure.CloneShards(stripe)
		for _, f := range failed {
			work[f] = nil
		}
		b.StartTimer()
		if isAppr {
			if _, err := appr.ReconstructReport(work, core.Options{}); err != nil {
				b.Fatal(err)
			}
		} else if err := c.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecodeAll(b *testing.B, failures int) {
	for _, fam := range bench.Families {
		fam := fam
		b.Run(fmt.Sprintf("baseline/%s/k=5", fam), func(b *testing.B) {
			c, err := bench.BuildBaseline(fam, 5, 4)
			if err != nil {
				b.Fatal(err)
			}
			benchDecode(b, c, failures)
		})
		b.Run(fmt.Sprintf("appr/%s/k=5/h=4", fam), func(b *testing.B) {
			c, err := bench.BuildAppr(fam, 5, 4, core.Uneven)
			if err != nil {
				b.Fatal(err)
			}
			benchDecode(b, c, failures)
		})
	}
}

func BenchmarkDecodeSingle(b *testing.B) { benchDecodeAll(b, 1) }
func BenchmarkDecodeDouble(b *testing.B) { benchDecodeAll(b, 2) }
func BenchmarkDecodeTriple(b *testing.B) { benchDecodeAll(b, 3) }

// --- Fig 12: combined comparison at k=5 ------------------------------------

func BenchmarkFig12Combined(b *testing.B) {
	tc := bench.TimingConfig{ShardSize: 16 * 1024, Iters: 1}
	for i := 0; i < b.N; i++ {
		bars, err := bench.Fig12(tc)
		if err != nil {
			b.Fatal(err)
		}
		if len(bars) != 8 {
			b.Fatalf("fig12 bars = %d", len(bars))
		}
	}
}

// --- Fig 13: recovery time on the cluster simulator ------------------------

func BenchmarkClusterRecovery(b *testing.B) {
	for _, fails := range []int{2, 3} {
		fails := fails
		b.Run(fmt.Sprintf("f=%d", fails), func(b *testing.B) {
			appr, err := bench.BuildAppr(core.FamilyRS, 5, 4, core.Uneven)
			if err != nil {
				b.Fatal(err)
			}
			size := bench.AlignSize(256<<20, appr.ShardSizeMultiple())
			failed := bench.FailureNodes(appr, fails)
			for i := 0; i < b.N; i++ {
				plan, err := cluster.PlanApproximate(appr, size, failed, true)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cluster.Simulate(cluster.DefaultConfig(), plan, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §3.4 reliability analysis ---------------------------------------------

func BenchmarkReliabilityEnumeration(b *testing.B) {
	c, err := core.New(core.Params{
		Family: core.FamilyRS, K: 3, R: 1, G: 2, H: 3, Structure: core.Uneven,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := reliability.Enumerate(c)
		if p.PU < 0.86 || p.PI < 0.98 {
			b.Fatalf("unexpected probabilities %+v", p)
		}
	}
}

// --- §4.1 video recovery ----------------------------------------------------

func BenchmarkVideoInterpolation(b *testing.B) {
	s, err := video.Generate(video.DefaultConfig(), 600)
	if err != nil {
		b.Fatal(err)
	}
	lost := s.LoseFraction(0.01, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.RecoverLost(lost)
		if err != nil {
			b.Fatal(err)
		}
		if res.MeanPSNR < 35 {
			b.Fatalf("PSNR %.1f", res.MeanPSNR)
		}
	}
}

// --- Degraded reads (storage-layer latency under failures) -----------------

func BenchmarkDegradedRead(b *testing.B) {
	c, err := core.New(core.Params{
		Family: core.FamilyRS, K: 5, R: 1, G: 2, H: 4, Structure: core.Uneven,
	})
	if err != nil {
		b.Fatal(err)
	}
	size := bench.AlignSize(benchShard, c.ShardSizeMultiple())
	stripe, err := erasure.RandomStripe(c, size, 7)
	if err != nil {
		b.Fatal(err)
	}
	victim := c.DataNodeIndexes()[0]
	b.Run("healthy", func(b *testing.B) {
		b.SetBytes(int64(size / 4))
		for i := 0; i < b.N; i++ {
			if _, err := c.ReadSubBlock(stripe, victim, i%4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("degraded", func(b *testing.B) {
		work := erasure.CloneShards(stripe)
		work[victim] = nil
		b.SetBytes(int64(size / 4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.ReadSubBlock(work, victim, i%4); err != nil {
				b.Fatal(err)
			}
		}
	})
}
