# Build/test entry points. `make ci` is the full gate: vet, build, unit
# tests under both the SIMD and `noasm` builds, the race-detector pass
# (which also runs every coder's concurrent conformance hammering), and
# short fuzz smoke runs of the checked-in corpora plus 5s of fresh
# exploration per target.

GO ?= go
FUZZTIME ?= 5s

.PHONY: all build vet lint errvet test test-noasm race race-hammer chaos net-chaos topo-chaos crash fuzz bench-pr1 bench-pr2 bench-pr6 bench-pr7 bench-pr9 bench-pr10 stress metrics-bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# errcheck-style gate: a call statement in the audited packages that
# drops an error result fails the build (see cmd/errvet; `_ =` marks
# deliberate discards). internal/net is in the set because network code
# is where errors get dropped.
errvet:
	$(GO) run ./cmd/errvet ./internal/store ./internal/net ./internal/tier ./internal/place

# vet plus staticcheck when it is installed (skipped silently offline —
# the container image does not bundle it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

# Same suite with the assembly GF(2^8) kernels compiled out: proves the
# pure-Go fallback (and therefore every non-SIMD platform) passes.
test-noasm:
	$(GO) test -tags noasm ./...

race:
	$(GO) test -race ./...

# Seeded chaos suite: full ingest → fault → degraded-read → repair →
# scrub cycles through the fault injector, under the race detector.
# Deterministic per seed; see internal/chaos and DESIGN.md §7.
chaos:
	$(GO) test -race -run 'TestChaos' ./internal/store/ ./internal/chaos/...

# Socket-level chaos suite: the same exact-or-flagged invariants, but
# the store's backend is a netio.Client talking to live TCP DataNodes
# through fault-injecting proxies (crash/latency/corrupt/torn/
# partition), plus the heartbeat-liveness and end-to-end kill/rejoin
# tests, all under the race detector. See internal/net and DESIGN.md
# §13.
net-chaos:
	$(GO) test -race -run 'TestChaosNet|TestLiveness|TestEndToEnd|TestPartitionHeartbeatPath' ./internal/net/

# Correlated-failure chaos suite: topology-aware placement under whole-
# rack loss, zone partitions, rolling upgrades and disk-batch faults —
# in-process (internal/store) and over live TCP through per-rack chaos
# proxies (internal/net) — plus the placement checker, domain-gated
# injector and rack-local fabric-simulator tests, all under the race
# detector. See internal/place and DESIGN.md §15.
topo-chaos:
	$(GO) test -race -run 'TestChaos(Net)?(RackLoss|ZonePartition|RollingUpgrade|DiskBatch)|TestPlacementSnapshotRoundTrip' ./internal/store/ ./internal/net/
	$(GO) test -race -run 'TestDomainRuleMatching|TestForParams|TestCheck|TestScatter|TestSimulateRackLocality|TestSimulateFlatFabricUnchanged|TestRackFailure' ./internal/chaos/ ./internal/place/ ./internal/cluster/ ./internal/hdfssim/

# Crash-consistency matrix: the journaled-store workload is killed at
# every registered crash point (torn journal appends, mid-write, each
# snapshot step, repair checkpoints) and recovered from the directory
# alone, asserting acknowledged operations survive byte-exact. See
# internal/chaos/crashtest and DESIGN.md §10.
crash:
	$(GO) test -run 'TestCrash|TestRepairResume|TestTruncation' ./internal/store/

# Each fuzz target runs alone (go test allows one -fuzz pattern per
# package invocation), seeded by testdata/fuzz corpora.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzGF256MulInv -fuzztime=$(FUZZTIME) ./internal/gf256/
	$(GO) test -run=^$$ -fuzz=FuzzSliceKernels -fuzztime=$(FUZZTIME) ./internal/gf256/
	$(GO) test -run=^$$ -fuzz=FuzzSIMDKernels -fuzztime=$(FUZZTIME) ./internal/gf256/
	$(GO) test -run=^$$ -fuzz=FuzzRSRoundTrip -fuzztime=$(FUZZTIME) ./internal/rs/
	$(GO) test -run=^$$ -fuzz=FuzzCoreRoundTrip -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -run=^$$ -fuzz=FuzzParseSchedule -fuzztime=$(FUZZTIME) ./internal/chaos/

# Focused concurrency hammer, repeated under the race detector: Stats
# vs the mutating paths, UpdateSegment vs FailNodes, the obs registry's
# concurrent counter/histogram/export use, and a long (4s per pass) run
# of the mixed-workload stress suite and model-based property test.
race-hammer:
	$(GO) test -race -count=3 -run 'TestUpdateSegmentFailNodesRace|TestStatsConcurrentMonotonic|TestConcurrentUse' ./internal/store/ ./internal/obs/
	STORE_STRESS_SECONDS=4 $(GO) test -race -count=2 -run 'TestConcurrentStress|TestSlowGetDoesNotBlockPut|TestAdmissionControl|TestStorePropertyVsModel' ./internal/store/

# Short mixed-workload stress pass under the race detector (the long
# version runs inside race-hammer; STORE_STRESS_SECONDS scales it).
stress:
	$(GO) test -race -run 'TestConcurrentStress|TestSlowGetDoesNotBlockPut|TestAdmissionControl|TestStorePropertyVsModel|TestJournal' ./internal/store/

# Observability overhead gate: Get on a store with the default disabled
# registry must stay within 2% of one with all metric handles stripped
# (the pre-instrumentation baseline). See TestMetricsOverheadGate.
metrics-bench:
	METRICS_GATE=1 $(GO) test -run TestMetricsOverheadGate -v ./internal/store/

# Regenerates BENCH_PR1.json (serial vs parallel striping engine).
bench-pr1:
	$(GO) run ./cmd/apprbench -exp pr1 -iters 7

# Regenerates BENCH_PR2.json (SIMD kernels + cached decode plans).
bench-pr2:
	$(GO) run ./cmd/apprbench -exp pr2 -iters 3

# Regenerates BENCH_PR6.json (concurrent load generator: closed/open
# loop workloads plus the group-commit vs per-op-fsync comparison; the
# >= 2x gate is evaluated only on >= 4 cores, report-only below).
bench-pr6:
	$(GO) run ./cmd/apprbench -exp pr6 -iters 3

# Regenerates BENCH_PR7.json (minimal-read repair and degraded reads:
# repair survivor-traffic A/B vs the full-stripe baseline, segment-read
# bytes moved, degraded-read latency, locality-aware cluster sim; the
# latency gate is evaluated only on >= 4 cores, report-only below).
bench-pr7:
	$(GO) run ./cmd/apprbench -exp pr7 -iters 3

# Regenerates BENCH_PR9.json (popularity-adaptive tiering: Zipf replay
# against the all-warm baseline then the tiered fleet, per-tier
# cost/latency frontier, fleet overhead vs 3x all-replication; the
# cached-vs-decode latency gate is evaluated only on >= 4 cores,
# report-only below).
bench-pr9:
	$(GO) run ./cmd/apprbench -exp pr9 -iters 3

# Regenerates BENCH_PR10.json (topology-aware placement: healthy vs
# whole-rack-loss degraded read latency with the survival invariant
# held, repair traffic rack-local vs the scatter/flat baselines; all
# targets deterministic, the latency ratio is report-only).
bench-pr10:
	$(GO) run ./cmd/apprbench -exp pr10 -iters 3

ci: lint errvet build test test-noasm race race-hammer stress chaos net-chaos topo-chaos crash fuzz metrics-bench bench-pr7 bench-pr9 bench-pr10
