// Videostore: the full tiered-video pipeline of the paper — generate a
// synthetic H.264-like stream, identify I frames as important, distribute
// segments over Approximate Code stripes, encode, suffer a multi-node
// failure beyond the unimportant tier's tolerance, reconstruct what the
// code can, and recover the rest fuzzily by frame interpolation.
package main

import (
	"fmt"
	"log"

	"approxcode/internal/core"
	"approxcode/internal/video"
)

func main() {
	// 1. Generate 10 seconds of 60 fps synthetic video.
	stream, err := video.Generate(video.DefaultConfig(), 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: %d frames, %d GOPs, important byte ratio %.3f, suggested h <= %d\n",
		len(stream.Frames), len(stream.GOPs()), stream.ImportantRatio(), stream.SuggestH())

	// 2. Pick the tier ratio and generate the code: h=6 amortizes the two
	// global parities over six local stripes.
	code, err := core.New(core.Params{
		Family: core.FamilyRS, K: 5, R: 1, G: 2, H: 6, Structure: core.Even,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("code: %s, overhead %.3fx (RS(5,3) would be 1.600x)\n",
		code.Name(), code.StorageOverhead())

	// 3. Distribute and pack: I frames to important sub-blocks, P/B to
	// unimportant ones.
	nodeSize := 6 * 4096
	placement, err := video.Distribute(stream, code, nodeSize)
	if err != nil {
		log.Fatal(err)
	}
	stripes := placement.Pack()
	for _, stripe := range stripes {
		if err := code.Encode(stripe); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("packed into %d global stripes of %d nodes\n", len(stripes), code.TotalShards())

	// 4. Fail two data nodes of local stripe 2 in every global stripe —
	// beyond the unimportant tier's tolerance (r = 1).
	lostFrames := make(map[int]bool)
	data := code.DataNodeIndexes()
	f1, f2 := data[2*5+0], data[2*5+1]
	for si, stripe := range stripes {
		stripe[f1], stripe[f2] = nil, nil
		rep, err := code.ReconstructReport(stripe, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if !rep.ImportantOK {
			log.Fatal("important data must survive a double failure")
		}
		for f := range placement.LostFrames(si, rep.Lost) {
			lostFrames[f] = true
		}
	}
	for f := range lostFrames {
		if stream.Frames[f].Kind == video.FrameI {
			log.Fatal("an I frame was lost — tiering is broken")
		}
	}
	fmt.Printf("double node failure: every I frame recovered exactly; %d P/B frames lost\n", len(lostFrames))

	// 5. Fuzzy recovery: interpolate the lost frames and measure quality.
	if len(lostFrames) == 0 {
		fmt.Println("losses fell on padding; nothing to interpolate")
		return
	}
	res, err := stream.RecoverLost(lostFrames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame interpolation over failure runs: mean PSNR %.2f dB over %d frames\n",
		res.MeanPSNR, len(res.Frames))

	// 6. The paper's §4.1 protocol — 1% of unimportant frames lost,
	// scattered — interpolates from near neighbours and lands above the
	// 35 dB bar.
	scattered := stream.LoseFraction(0.01, 11)
	res2, err := stream.RecoverLost(scattered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame interpolation at scattered 1%% loss: mean PSNR %.2f dB (paper: commonly > 35 dB)\n",
		res2.MeanPSNR)
}
