// Reliability: reproduce the paper's §3.4 fault-tolerance expectations —
// the probability P_U that unimportant data survives r+1 node failures
// and P_I that important data survives r+g+1 node failures — three ways:
// the paper's closed forms, exact enumeration, and Monte Carlo sampling.
package main

import (
	"fmt"
	"log"

	"approxcode/internal/core"
	"approxcode/internal/reliability"
)

func main() {
	configs := []core.Params{
		{Family: core.FamilyRS, K: 3, R: 1, G: 2, H: 3},  // the paper's worked example
		{Family: core.FamilyRS, K: 5, R: 1, G: 2, H: 4},  // evaluation scale
		{Family: core.FamilyRS, K: 5, R: 2, G: 1, H: 4},  // r=2 variant
		{Family: core.FamilyLRC, K: 5, R: 1, G: 2, H: 6}, // LRC family
	}
	fmt.Println("code                        P_U(form)  P_U(exact)  P_U(MC)    P_I(form)  P_I(exact)  P_I(MC)")
	for _, p := range configs {
		for _, s := range []core.Structure{core.Even, core.Uneven} {
			p.Structure = s
			c, err := core.New(p)
			if err != nil {
				log.Fatal(err)
			}
			form := reliability.Formula(p.K, p.R, p.G, p.H, s)
			exact := reliability.Enumerate(c)
			mc := reliability.MonteCarlo(c, 50000, 7)
			fmt.Printf("%-27s %8.2f%%  %8.2f%%  %8.2f%%  %8.2f%%  %8.2f%%  %8.2f%%\n",
				c.Name(), 100*form.PU, 100*exact.PU, 100*mc.PU,
				100*form.PI, 100*exact.PI, 100*mc.PI)
		}
	}
	fmt.Println("\npaper §3.4: APPR.RS(3,1,2,3,Even) P_U=80.21% P_I=95.50%; Uneven P_U=86.81% P_I=98.50%")
}
