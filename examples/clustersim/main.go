// Clustersim: reproduce the paper's recovery-time comparison (Fig. 13)
// on the HDFS-like cluster simulator — RS(5,3) baseline vs
// APPR.RS(5,1,2,h) with important-only recovery under double and triple
// node failures.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"approxcode/internal/cluster"
	"approxcode/internal/core"
	"approxcode/internal/rs"
)

func main() {
	cfg := cluster.DefaultConfig()
	fmt.Printf("platform: %.0f MB/s HDD read, %.1f Gb/s NIC, %.1f ms seek\n",
		cfg.DiskReadBW/1e6, cfg.NetBW*8/1e9, cfg.SeekLatency*1e3)

	const (
		k         = 5
		nodeBytes = 256 << 20 // 256 MiB per node column
		stripes   = 4
		samples   = 30
	)
	baseline, err := rs.New(k, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range []int{4, 6} {
		appr, err := core.New(core.Params{
			Family: core.FamilyRS, K: k, R: 1, G: 2, H: h, Structure: core.Uneven,
		})
		if err != nil {
			log.Fatal(err)
		}
		size := nodeBytes - nodeBytes%appr.ShardSizeMultiple()
		for _, fails := range []int{2, 3} {
			rng := rand.New(rand.NewSource(int64(h*10 + fails)))
			var baseSum, apprSum float64
			for s := 0; s < samples; s++ {
				bf := rng.Perm(baseline.TotalShards())[:fails]
				bp, err := cluster.PlanBaseline(baseline, size, bf)
				if err != nil {
					log.Fatal(err)
				}
				br, err := cluster.Simulate(cfg, bp, stripes)
				if err != nil {
					log.Fatal(err)
				}
				baseSum += br.Time
				af := rng.Perm(appr.TotalShards())[:fails]
				ap, err := cluster.PlanApproximate(appr, size, af, true)
				if err != nil {
					log.Fatal(err)
				}
				ar, err := cluster.Simulate(cfg, ap, stripes)
				if err != nil {
					log.Fatal(err)
				}
				apprSum += ar.Time
			}
			fmt.Printf("h=%d f=%d: RS(5,3) %.2fs  %s %.2fs  -> %.2fx faster\n",
				h, fails, baseSum/samples, appr.Name(), apprSum/samples,
				baseSum/apprSum)
		}
	}
}
