// Storageserver: the complete Approximate Storage Layer (paper Fig. 6)
// in action — serialize a synthetic video into the AGOP container,
// parse it back through the data identification module, ingest into the
// concurrent store, crash nodes, serve degraded reads, repair in
// parallel, and route unrecoverable P/B frames to interpolation.
//
// With -listen the demo keeps running afterwards and serves the store's
// observability surface over HTTP:
//
//	storageserver -listen :9090 -chaos "fault=transient,rate=0.2" -seed 7
//	curl localhost:9090/metrics          # Prometheus text format
//	curl localhost:9090/debug/vars       # expvar JSON
//	go tool pprof localhost:9090/debug/pprof/profile?seconds=5
//
// With -master the store's backend is a netio.Client: columns live on
// remote apprnode DataNodes discovered through the master's node map,
// and the whole pipeline — ingest, node failure, degraded reads,
// repair — runs over live TCP (see the README multi-process
// quick-start).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"approxcode/internal/chaos"
	"approxcode/internal/core"
	netio "approxcode/internal/net"
	"approxcode/internal/obs"
	"approxcode/internal/place"
	"approxcode/internal/store"
	"approxcode/internal/tier"
	"approxcode/internal/video"
)

var (
	listenFlag = flag.String("listen", "", "serve /metrics, /debug/vars and /debug/pprof on this address and keep running (e.g. :9090)")
	chaosFlag  = flag.String("chaos", "", "fault-injection schedule DSL wrapped around node I/O (e.g. \"fault=transient,rate=0.2\")")
	seedFlag   = flag.Int64("seed", 1, "seed for fault injection and retry jitter")
	traceFlag  = flag.Bool("trace", false, "stream span events (one line per store operation) to stderr")
	dirFlag    = flag.String("dir", "", "durable store directory: journal every mutation and demo a kill-and-recover after the repair (empty = in-memory)")
	masterFlag = flag.String("master", "", "apprnode master address: store columns on remote DataNodes from its node map instead of in-memory nodes")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		// A bind failure is a configuration error, not a runtime fault:
		// report which role failed to bind where and exit distinctly.
		var be *netio.BindError
		if errors.As(err, &be) {
			fmt.Fprintf(os.Stderr, "storageserver: %v\n", be)
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// rackLossDrill ingests the clip into a rack-aware store (three racks,
// LRC groups rack-local, globals spread), certifies the layout with the
// placement checker, kills one whole rack, and proves the important
// tier reads back byte-exact through the loss.
func rackLossDrill(segs []store.Segment, reg *obs.Registry, seed int64) error {
	p := core.Params{Family: core.FamilyRS, K: 2, R: 1, G: 2, H: 3, Structure: core.Uneven}
	topo, err := place.ForParams(p, place.Spec{Racks: 3, Zones: 3})
	if err != nil {
		return err
	}
	st, err := store.Open(store.Config{
		Code:     p,
		NodeSize: 3 * 8192,
		Obs:      reg,
		Retry:    store.RetryPolicy{Seed: seed},
		Topology: topo,
	})
	if err != nil {
		return err
	}
	prep := st.PlacementReport()
	fmt.Printf("rack drill: %d nodes over %d racks, rack-safe=%v groups-rack-local=%v\n",
		topo.N(), len(topo.Racks()), prep.RackSafe, prep.GroupsRackLocal)
	if err := st.Put("clip", segs); err != nil {
		return err
	}
	rack := topo.RackOf(0) // the rack holding the important group
	if err := st.FailNodes(topo.NodesInRack(rack)...); err != nil {
		return err
	}
	got, rep, err := st.Get("clip")
	if err != nil {
		return err
	}
	lost := make(map[int]bool, len(rep.LostSegments))
	for _, id := range rep.LostSegments {
		lost[id] = true
	}
	for i, g := range got {
		w := segs[i]
		if w.Important && (lost[w.ID] || !bytes.Equal(g.Data, w.Data)) {
			return fmt.Errorf("rack drill: important segment %d damaged by losing rack %s", w.ID, rack)
		}
	}
	rrep, err := st.RepairAll()
	if err != nil {
		return err
	}
	fmt.Printf("rack drill: lost rack %s (%d nodes), 0 important segments lost, %d degraded sub-reads; rebuild moved %d cross-rack bytes\n",
		rack, len(topo.NodesInRack(rack)), rep.DegradedSubReads, rrep.BytesReadCrossRack)
	return nil
}

func run() error {
	// The demo always runs with a live registry so every step below
	// lands in the histograms the HTTP endpoint exports.
	reg := obs.NewRegistry(true)
	if *traceFlag {
		reg.SetSpanSink(obs.NewWriterSink(log.Writer()))
	}

	// Bind the observability listener before doing any work: a bad
	// -listen address fails the run up front as a typed *BindError
	// instead of surfacing from a background goroutine mid-demo.
	var obsLn net.Listener
	if *listenFlag != "" {
		ln, err := net.Listen("tcp", *listenFlag)
		if err != nil {
			return &netio.BindError{Role: "metrics", Addr: *listenFlag, Err: err}
		}
		obsLn = ln
		obs.ServeOn(obsLn, reg, func(err error) { log.Printf("metrics server: %v", err) })
		fmt.Printf("serving metrics and pprof on %s\n", obsLn.Addr())
	}

	// 1. A video arrives as a bitstream container.
	stream, err := video.Generate(video.DefaultConfig(), 300)
	if err != nil {
		return err
	}
	var container bytes.Buffer
	if err := video.WriteStream(&container, stream); err != nil {
		return err
	}
	fmt.Printf("container: %d bytes for %d frames\n", container.Len(), len(stream.Frames))

	// 2. The identification module parses it and tags I frames important.
	info, frames, err := video.ParseStream(&container)
	if err != nil {
		return err
	}
	fmt.Printf("parsed: %dx%d @ %d fps, %d frames\n", info.Width, info.Height, info.FPS, info.FrameCount)
	segs := make([]store.Segment, len(frames))
	for i, f := range frames {
		segs[i] = store.Segment{ID: f.Index, Important: f.Important(), Data: f.Payload}
	}

	// 3. Ingest into the storage layer (parallel stripe encoding),
	// optionally with a chaos injector between the store and its nodes
	// so the self-healing counters have something to count.
	tracker := tier.NewTracker(0.5)
	cfg := store.Config{
		Code: core.Params{
			Family: core.FamilyRS, K: 5, R: 1, G: 2, H: 6, Structure: core.Even,
		},
		NodeSize:   6 * 8192,
		Obs:        reg,
		Retry:      store.RetryPolicy{Seed: *seedFlag},
		CacheBytes: 16 << 20,
		Tracker:    tracker,
	}
	var inj *chaos.Injector
	if *chaosFlag != "" {
		if *masterFlag != "" {
			return fmt.Errorf("-chaos and -master are mutually exclusive: fault-inject the transport with a netio.ChaosProxy in front of the DataNodes instead")
		}
		rules, err := chaos.ParseSchedule(*chaosFlag)
		if err != nil {
			return err
		}
		inj = chaos.NewInjector(*seedFlag, rules...)
		cfg.WrapIO = inj.Wrap
	}

	// With -master the backend is a network client over the master's
	// node map: the client owns retries/hedging at the network edge,
	// the store takes its single-attempt path.
	if *masterFlag != "" {
		if *dirFlag != "" {
			return fmt.Errorf("-dir and -master are mutually exclusive: with remote DataNodes durability lives on the nodes")
		}
		client, err := netio.Dial(netio.ClientConfig{
			Master: *masterFlag,
			Retry:  netio.RetryPolicy{Seed: *seedFlag},
			Obs:    reg,
		})
		if err != nil {
			return fmt.Errorf("dial master %s: %w", *masterFlag, err)
		}
		defer client.Close()
		c, err := core.New(cfg.Code)
		if err != nil {
			return err
		}
		if got, total := len(client.Nodes()), c.TotalShards(); got < total {
			return fmt.Errorf("master knows %d node(s), the code needs %d: start more apprnode data processes", got, total)
		}
		cfg.Backend = client
		fmt.Printf("networked: %d DataNode columns via master %s\n", len(client.Nodes()), *masterFlag)
	}

	var st *store.Store
	if *dirFlag != "" {
		var rec *store.RecoverReport
		st, rec, err = store.OpenDurable(*dirFlag, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("durable store at %s: generation %d, %d journal ops replayed\n",
			*dirFlag, rec.Generation, rec.ReplayedOps)
	} else {
		st, err = store.Open(cfg)
		if err != nil {
			return err
		}
	}
	exists := false
	for _, name := range st.Objects() {
		exists = exists || name == "clip"
	}
	if exists {
		fmt.Println("object clip survived a previous run; skipping ingest")
	} else if err := st.Put("clip", segs); err != nil {
		return err
	}
	if *masterFlag != "" {
		// Publish the object to the master's catalog so `apprnode
		// status` sees what the cluster holds.
		stripes, _ := st.ObjectStripes("clip")
		if err := netio.ReportObject(*masterFlag, "clip", stripes, 0); err != nil {
			return fmt.Errorf("report object: %w", err)
		}
	}
	stats := st.Stats()
	fmt.Printf("stored: %d object(s) on %d nodes, %d bytes incl. parity (overhead %.3fx)\n",
		stats.Objects, stats.Nodes, stats.StoredBytes, st.Code().StorageOverhead())

	// 4. Crash two data nodes of one local stripe (beyond r=1 for the
	// unimportant tier) and serve a degraded read. With -master this is
	// the administrative fail set — the store plans reads around the
	// nodes without asking the network.
	dn := st.Code().DataNodeIndexes()
	if err := st.FailNodes(dn[0], dn[1]); err != nil {
		return err
	}
	got, rep, err := st.Get("clip")
	if err != nil {
		return err
	}
	fmt.Printf("degraded read: %d segments served, %d unrecoverable P/B segments\n",
		len(got), len(rep.LostSegments))
	for _, id := range rep.LostSegments {
		if stream.Frames[id].Kind == video.FrameI {
			return fmt.Errorf("an important segment was lost")
		}
	}

	// 5. Parallel repair onto replacement nodes.
	rrep, err := st.RepairAll()
	if err != nil {
		return err
	}
	fmt.Printf("repair: %d stripes, %d bytes rebuilt, %d segments abandoned to fuzzy recovery\n",
		rrep.StripesRepaired, rrep.BytesRebuilt, len(rrep.LostSegments["clip"]))

	// 5b. With -dir, simulate a process kill: throw the live store away
	// and rebuild it from the directory alone — the snapshot generation
	// plus the journal, including the repair's checkpoints.
	if *dirFlag != "" {
		if err := st.Close(); err != nil {
			return err
		}
		st, _, err = store.Recover(*dirFlag, store.LoadOptions{
			Lenient:    true,
			Retry:      store.RetryPolicy{Seed: *seedFlag},
			Obs:        reg,
			WrapIO:     cfg.WrapIO,
			CacheBytes: cfg.CacheBytes,
			Tracker:    tracker,
		})
		if err != nil {
			return err
		}
		if _, _, err := st.Get("clip"); err != nil {
			return err
		}
		fmt.Printf("kill-and-recover: store rebuilt from %s, failed nodes %v, clip still serves\n",
			*dirFlag, st.FailedNodes())
	}

	// 6. Fuzzy recovery of the abandoned frames.
	lost := make(map[int]bool)
	for _, id := range rrep.LostSegments["clip"] {
		lost[id] = true
	}
	if len(lost) > 0 {
		res, err := stream.RecoverLost(lost)
		if err != nil {
			return err
		}
		fmt.Printf("interpolation: %d frames re-synthesized, mean PSNR %.2f dB\n",
			len(res.Frames), res.MeanPSNR)
	} else {
		fmt.Println("interpolation: nothing to do (losses fell on padding)")
	}

	// 7. Scrub confirms parity consistency end to end.
	scrub, err := st.Scrub()
	if err != nil {
		return err
	}
	fmt.Printf("scrub: %d stripes checked, %d corrupt\n", scrub.StripesChecked, len(scrub.Corrupt))

	// 7b. Rack-loss drill: a second store with a rack-survivable geometry
	// (K <= G) laid out by the topology-aware placer across three racks.
	// Failing every node of the rack holding the important group at once
	// — the correlated failure a ToR switch or a PDU causes — must leave
	// every I frame readable exact, with the decode falling back to the
	// global parities in the surviving racks.
	if err := rackLossDrill(segs, reg, *seedFlag); err != nil {
		return err
	}

	// 8. Popularity-adaptive tiering: every Get above fed the EWMA
	// tracker, so one manager tick classifies "clip" hot, migrates it to
	// replicated redundancy (journaled migrate-begin/commit, crash-safe),
	// and repeated segment reads then come from the decoded-GOP cache
	// without touching NodeIO. Skipped with -master: migration requires
	// the built-in node backend.
	if *masterFlag == "" {
		mgr := &tier.Manager{
			Tracker: tracker,
			Policy:  tier.Policy{MaxHot: 1, HotMinRate: 1},
			Store:   st,
			OnError: func(name string, to tier.Level, err error) {
				log.Printf("tier: migrate %s to %s: %v", name, to, err)
			},
		}
		migrated := mgr.Tick()
		lvl, _ := st.ObjectTier("clip")
		for i := 0; i < 4; i++ {
			if _, err := st.GetSegment("clip", segs[0].ID); err != nil {
				return err
			}
		}
		ts := st.Stats()
		fmt.Printf("tiering: %d migration(s), clip is %s (%d promotions); cache hits=%d misses=%d\n",
			migrated, lvl, ts.TierPromotions, ts.CacheHits, ts.CacheMisses)
	}

	final := st.Stats()
	fmt.Printf("telemetry: retries=%d hedges=%d read-errors=%d checksum-failures=%d shards-healed=%d\n",
		final.Retries, final.Hedges, final.ReadErrors, final.ChecksumFailures, final.ShardsHealed)
	if inj != nil {
		c := inj.Stats()
		fmt.Printf("chaos: %d faults injected\n", c.Total())
	}

	// 9. With -listen, keep serving reads so scrapes and profiles see a
	// live workload rather than a terminated process.
	if obsLn != nil {
		fmt.Println("demo complete; replaying Get(clip) forever (ctrl-c to stop)")
		for {
			if _, _, err := st.Get("clip"); err != nil {
				return err
			}
		}
	}
	return nil
}
