// Quickstart: generate an Approximate Code, encode a stripe, fail r+g
// nodes, and watch important data survive while unimportant data beyond
// tolerance is reported for fuzzy recovery.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"approxcode/internal/core"
)

func main() {
	// APPR.RS(4,1,2,3): 3 local stripes of 4 data + 1 local parity, plus
	// 2 global parity nodes. Unimportant data tolerates 1 failure;
	// important data tolerates 3.
	code, err := core.New(core.Params{
		Family: core.FamilyRS, K: 4, R: 1, G: 2, H: 3, Structure: core.Uneven,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("code: %s, %d nodes, storage overhead %.3fx\n",
		code.Name(), code.TotalShards(), code.StorageOverhead())

	// Fill the 12 data nodes (first local stripe = the important tier).
	const nodeSize = 3 * 1024
	rng := rand.New(rand.NewSource(42))
	shards := make([][]byte, code.TotalShards())
	for _, dn := range code.DataNodeIndexes() {
		shards[dn] = make([]byte, nodeSize)
		rng.Read(shards[dn])
	}
	if err := code.Encode(shards); err != nil {
		log.Fatal(err)
	}
	original := make([][]byte, len(shards))
	for i, s := range shards {
		original[i] = append([]byte(nil), s...)
	}

	// Fail 3 nodes: two important-stripe nodes and one unimportant node.
	shards[0], shards[1], shards[5] = nil, nil, nil
	fmt.Println("failed nodes 0, 1 (important stripe) and 5 (unimportant stripe)")

	rep, err := code.ReconstructReport(shards, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("important data recovered: %v\n", rep.ImportantOK)
	fmt.Printf("unrecoverable sub-blocks: %d (handed to the video recovery module)\n", len(rep.Lost))
	fmt.Printf("bytes rebuilt: %d, survivor bytes read: %d\n", rep.BytesRebuilt, rep.BytesRead)

	// Every important byte is back, bit for bit.
	for i := 0; i < 2; i++ {
		if !bytes.Equal(shards[i], original[i]) {
			log.Fatalf("node %d differs after reconstruction", i)
		}
	}
	fmt.Println("important nodes byte-identical after triple failure: OK")
}
